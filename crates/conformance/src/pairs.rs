//! One differential runner per redundant engine pair.
//!
//! Each runner draws its own circuits from a domain-separated stream of
//! the run seed, exercises both implementations of the pair, and returns
//! a (hopefully empty) list of [`Mismatch`]es:
//!
//! * **`sim`** — `sim::comb`/`sim::seq` 64-lane kernels vs the naive
//!   [`RefMachine`] interpreter, probed at four lanes.
//! * **`fault`** — `fault::combsim`/`fault::seqsim` first-detection
//!   indices vs a brute-force good-vs-forced reference run. The zero-fault
//!   good machine is covered as a special case: every detection decision
//!   compares the simulators' internal good machine against the reference.
//! * **`bist`** — behavioral `Alfsr`/`Misr`/`fold_xor`/`HoldCycler`/
//!   control unit/`BistEngine` vs the `bist::structural` netlists,
//!   including a full `insert_bist` assembly run against a hand-rolled
//!   behavioral twin of its schedule.
//! * **`p1500`** — the `TapDriver` protocol stack (WIR/WBY/WCDR/WDR
//!   sequences) vs a directly-commanded backend, and `wrap_core`'s
//!   boundary chain (WBR) vs a reference shift/update/capture model.
//! * **`kernel`** — the compiled-SoA fault-sim engines
//!   (`SimEngine::Kernel`) vs the graph-walking reference engines
//!   (`SimEngine::Graph`) on shared stimulus: first-detection vectors,
//!   syndrome streams, and per-window survivor trajectories must be
//!   bit-identical across both observation modes.

use soctest_bist::structural::BistSpec;
use soctest_bist::{
    fold_xor, structural as bist_structural, Alfsr, BistCommand, BistEngine, BistEngineConfig,
    BitSource, ConstraintGenerator, ControlUnit, HoldCycler, Misr, ModuleHookup, PortWiring,
};
use soctest_fault::{
    CombFaultSim, FaultKind, FaultUniverse, ObserveMode, ParallelPolicy, PatternSet, SeqFaultSim,
    SeqFaultSimConfig, SimEngine, VectorStimulus,
};
use soctest_netlist::{compile, Netlist};
use soctest_p1500::{
    structural as p1500_structural, BistBackend, MockBackend, TapDriver, TapInstruction,
};
use soctest_prng::SplitMix64;
use soctest_sim::{CombSim, SeqSim, VcdProbe};

use crate::generator::{random_netlist, GeneratorConfig};
use crate::reference::{self, RefMachine};
use crate::report::Mismatch;

/// The five redundant engine pairs, in run order.
pub const PAIR_NAMES: [&str; 5] = ["sim", "fault", "bist", "p1500", "kernel"];

/// Lanes sampled out of the 64-lane words when comparing against the
/// single-bit reference.
const LANES: [usize; 4] = [0, 17, 42, 63];

fn rng_for(seed: u64, tag: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ tag.wrapping_mul(0xA5A5_5A5A_9E37_79B9))
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Runs every pair differential for one seed.
pub fn run_all_pairs(seed: u64, max_gates: usize) -> Vec<Mismatch> {
    let mut out = Vec::new();
    out.extend(pair_sim(seed, max_gates));
    out.extend(pair_fault(seed, max_gates));
    out.extend(pair_bist(seed, max_gates));
    out.extend(pair_p1500(seed, max_gates));
    out.extend(pair_kernel(seed, max_gates));
    out
}

// ---------------------------------------------------------------- pair: sim

/// Compares the 64-lane `CombSim` on `candidate` against the naive
/// reference on `golden` under shared random stimulus. With
/// `golden == candidate` this is the plain conformance check; with a
/// mutated candidate it is the detector the self-test validates.
pub fn comb_divergence(golden: &Netlist, candidate: &Netlist, probe_seed: u64) -> Option<String> {
    assert_eq!(golden.input_width(), candidate.input_width());
    assert_eq!(golden.output_width(), candidate.output_width());
    let mut rng = rng_for(probe_seed, 0xC0);
    let pis = candidate.primary_inputs();
    let pos = candidate.primary_outputs();
    let mut sim = CombSim::new(candidate).expect("comb sim construction");
    for round in 0..3 {
        let words: Vec<u64> = pis.iter().map(|_| rng.next_u64()).collect();
        for (net, w) in pis.iter().zip(&words) {
            sim.set(*net, *w);
        }
        sim.eval(candidate);
        for &lane in &LANES {
            let bits: Vec<bool> = words.iter().map(|w| (w >> lane) & 1 == 1).collect();
            let expect = reference::eval_comb(golden, &bits);
            for (oi, out) in pos.iter().enumerate() {
                let got = (sim.get(*out) >> lane) & 1 == 1;
                if got != expect[oi] {
                    return Some(format!(
                        "round {round} lane {lane} output {oi}: sim={got} reference={}",
                        expect[oi]
                    ));
                }
            }
        }
    }
    None
}

/// Replays [`comb_divergence`]'s probe stimulus on `netlist` and renders
/// the run as a VCD document (one timestep per probe round, lane 0 of the
/// 64-lane words). This is the waveform a failing `difftest` seed dumps
/// next to its minimized netlist, so the divergence can be inspected in a
/// standard viewer.
pub fn divergence_vcd(netlist: &Netlist, probe_seed: u64) -> String {
    let mut rng = rng_for(probe_seed, 0xC0);
    let pis = netlist.primary_inputs();
    let mut sim = SeqSim::new(netlist).expect("comb sim construction");
    let mut probe = VcdProbe::new();
    let group = probe.add_module(netlist.name(), netlist);
    for round in 0..3u64 {
        let words: Vec<u64> = pis.iter().map(|_| rng.next_u64()).collect();
        for (net, w) in pis.iter().zip(&words) {
            sim.set_input(*net, *w);
        }
        sim.eval_comb();
        probe.record(group, &sim);
        probe.advance(round);
    }
    probe.finish()
}

/// Compares `SeqSim` against the reference over a multi-cycle run.
pub fn seq_divergence(nl: &Netlist, probe_seed: u64) -> Option<String> {
    let mut rng = rng_for(probe_seed, 0xC1);
    let pis = nl.primary_inputs();
    let pos = nl.primary_outputs();
    let mut sim = SeqSim::new(nl).expect("seq sim construction");
    let cycles = 16usize;
    let stim: Vec<Vec<u64>> = (0..cycles)
        .map(|_| pis.iter().map(|_| rng.next_u64()).collect())
        .collect();
    let mut trace: Vec<Vec<u64>> = Vec::with_capacity(cycles);
    for row in &stim {
        for (net, w) in pis.iter().zip(row) {
            sim.set_input(*net, *w);
        }
        sim.eval_comb();
        trace.push(pos.iter().map(|o| sim.get(*o)).collect());
        sim.clock();
    }
    for &lane in &LANES {
        let mut rm = RefMachine::new(nl);
        for (t, row) in stim.iter().enumerate() {
            let bits: Vec<bool> = row.iter().map(|w| (w >> lane) & 1 == 1).collect();
            rm.set_inputs(&bits);
            rm.settle();
            for (oi, &e) in rm.outputs().iter().enumerate() {
                let got = (trace[t][oi] >> lane) & 1 == 1;
                if got != e {
                    return Some(format!(
                        "cycle {t} lane {lane} output {oi}: sim={got} reference={e}"
                    ));
                }
            }
            rm.clock();
        }
    }
    None
}

/// The combinational netlist the `sim` pair draws for `seed` — exposed so
/// `difftest` can regenerate, minimize, and dump a failing circuit.
pub fn sim_comb_netlist(seed: u64, max_gates: usize) -> Netlist {
    let mut rng = rng_for(seed, 1);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates).comb();
    random_netlist(&mut rng, &cfg)
}

fn pair_sim(seed: u64, max_gates: usize) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let nl = sim_comb_netlist(seed, max_gates);
    if let Some(d) = comb_divergence(&nl, &nl, seed) {
        out.push(Mismatch {
            pair: "sim",
            seed,
            detail: format!("comb: {d}"),
        });
    }
    let mut rng = rng_for(seed, 2);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates);
    let cfg = cfg.seq(&mut rng);
    let nl = random_netlist(&mut rng, &cfg);
    if let Some(d) = seq_divergence(&nl, seed) {
        out.push(Mismatch {
            pair: "sim",
            seed,
            detail: format!("seq: {d}"),
        });
    }
    out
}

// -------------------------------------------------------------- pair: fault

fn observed(rm: &RefMachine<'_>, observe: &[soctest_netlist::NetId]) -> Vec<bool> {
    observe.iter().map(|n| rm.value(*n)).collect()
}

fn comb_fault_divergence(seed: u64, max_gates: usize) -> Option<String> {
    let mut rng = rng_for(seed, 3);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates.min(40)).comb();
    let nl = random_netlist(&mut rng, &cfg);
    let universe = FaultUniverse::stuck_at(&nl);
    let view = universe.view();
    let width = view.input_width();
    let rows: Vec<Vec<bool>> = (0..96)
        .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let patterns = PatternSet::from_rows(width, &rows);
    let result = CombFaultSim::new(&universe)
        .with_parallelism(ParallelPolicy::serial())
        .run_stuck_at(&patterns)
        .expect("comb fault sim");

    let observe = universe.observe_nets().to_vec();
    let faults = universe.faults();
    let mut ref_det: Vec<Option<u64>> = vec![None; faults.len()];
    let mut rm = RefMachine::new(view);
    for (p, row) in rows.iter().enumerate() {
        rm.clear_force();
        rm.set_inputs(row);
        rm.settle();
        let good = observed(&rm, &observe);
        for (fi, fault) in faults.iter().enumerate() {
            if ref_det[fi].is_some() {
                continue;
            }
            rm.force(fault.net, fault.kind == FaultKind::Sa1);
            // Re-drive the inputs: a previous fault forced on an Input net
            // leaves its stale value behind otherwise (Input gates hold
            // whatever was last written).
            rm.set_inputs(row);
            rm.settle();
            if observed(&rm, &observe) != good {
                ref_det[fi] = Some(p as u64);
            }
            rm.clear_force();
        }
    }
    for (fi, (got, expect)) in result.detection.iter().zip(&ref_det).enumerate() {
        if got != expect {
            return Some(format!(
                "comb fault {fi} ({}): simulator={got:?} reference={expect:?}",
                universe.describe(fi)
            ));
        }
    }
    None
}

fn seq_fault_divergence(seed: u64, max_gates: usize) -> Option<String> {
    let mut rng = rng_for(seed, 4);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates.min(30));
    let cfg = cfg.seq(&mut rng);
    let nl = random_netlist(&mut rng, &cfg);
    let universe = FaultUniverse::stuck_at(&nl);
    let cycles = 24u64;
    let width = nl.input_width();
    let words: Vec<u64> = (0..cycles).map(|_| rng.next_u64() & mask(width)).collect();
    let config = SeqFaultSimConfig {
        window: 16,
        observe: ObserveMode::Outputs,
        collect_syndromes: false,
        parallel: ParallelPolicy::serial(),
        ..Default::default()
    };
    let result = SeqFaultSim::new(&universe, config)
        .run(&mut VectorStimulus::new(words.clone()))
        .expect("seq fault sim");

    let view = universe.view();
    let observe = universe.observe_nets().to_vec();
    let input_bits =
        |t: usize| -> Vec<bool> { (0..width).map(|i| (words[t] >> i) & 1 == 1).collect() };
    let mut rm = RefMachine::new(view);
    let mut good_trace: Vec<Vec<bool>> = Vec::new();
    for t in 0..cycles as usize {
        rm.set_inputs(&input_bits(t));
        rm.settle();
        good_trace.push(observed(&rm, &observe));
        rm.clock();
    }
    for (fi, fault) in universe.faults().iter().enumerate() {
        let mut fm = RefMachine::new(view);
        fm.force(fault.net, fault.kind == FaultKind::Sa1);
        let mut expect: Option<u64> = None;
        for (t, good) in good_trace.iter().enumerate() {
            fm.set_inputs(&input_bits(t));
            fm.settle();
            if &observed(&fm, &observe) != good {
                expect = Some(t as u64);
                break;
            }
            fm.clock();
        }
        if result.detection[fi] != expect {
            return Some(format!(
                "seq fault {fi} ({}): simulator={:?} reference={expect:?}",
                universe.describe(fi),
                result.detection[fi]
            ));
        }
    }
    None
}

fn pair_fault(seed: u64, max_gates: usize) -> Vec<Mismatch> {
    let mut out = Vec::new();
    if let Some(d) = comb_fault_divergence(seed, max_gates) {
        out.push(Mismatch {
            pair: "fault",
            seed,
            detail: d,
        });
    }
    if let Some(d) = seq_fault_divergence(seed, max_gates) {
        out.push(Mismatch {
            pair: "fault",
            seed,
            detail: d,
        });
    }
    out
}

// --------------------------------------------------------------- pair: bist

fn alfsr_divergence(seed: u64) -> Option<String> {
    let mut rng = rng_for(seed, 5);
    let width = 2 + rng.gen_index(15);
    let nl = bist_structural::alfsr(width).expect("structural alfsr");
    let mut sim = SeqSim::new(&nl).expect("alfsr sim");
    let mut model = Alfsr::new(width).expect("behavioral alfsr");
    for cycle in 0..60 {
        let en = rng.gen_bool(0.8);
        sim.drive_port("en", u64::from(en));
        sim.step();
        if en {
            model.step();
        }
        sim.eval_comb();
        let got = sim.read_port_lane("q", 0);
        if got != Some(model.state()) {
            return Some(format!(
                "alfsr width {width} cycle {cycle}: structural={got:?} behavioral={:#x}",
                model.state()
            ));
        }
    }
    None
}

fn misr_divergence(seed: u64) -> Option<String> {
    let mut rng = rng_for(seed, 6);
    let width = 2 + rng.gen_index(15);
    let nl = bist_structural::misr(width).expect("structural misr");
    let mut sim = SeqSim::new(&nl).expect("misr sim");
    let mut model = Misr::new(width);
    for cycle in 0..60 {
        let en = rng.gen_bool(0.85);
        let clr = rng.gen_bool(0.05);
        let data = rng.next_u64() & mask(width);
        sim.drive_port("data", data);
        sim.drive_port("en", u64::from(en));
        sim.drive_port("clr", u64::from(clr));
        sim.step();
        if clr {
            model.reset();
        } else if en {
            model.absorb(data);
        }
        sim.eval_comb();
        let got = sim.read_port_lane("sig", 0);
        if got != Some(model.signature()) {
            return Some(format!(
                "misr width {width} cycle {cycle}: structural={got:?} behavioral={:#x}",
                model.signature()
            ));
        }
    }
    None
}

fn xor_cascade_divergence(seed: u64) -> Option<String> {
    let mut rng = rng_for(seed, 7);
    let in_width = 1 + rng.gen_index(24);
    let out_width = 1 + rng.gen_index(in_width.min(16));
    let nl = bist_structural::xor_cascade(in_width, out_width).expect("structural cascade");
    let mut sim = SeqSim::new(&nl).expect("cascade sim");
    for round in 0..8 {
        let word = rng.next_u64() & mask(in_width);
        sim.drive_port("data", word);
        sim.eval_comb();
        let bits: Vec<bool> = (0..in_width).map(|i| (word >> i) & 1 == 1).collect();
        let expect = fold_xor(&bits, out_width);
        let got = sim.read_port_lane("folded", 0);
        if got != Some(expect) {
            return Some(format!(
                "xor_cascade {in_width}->{out_width} round {round}: structural={got:?} behavioral={expect:#x}"
            ));
        }
    }
    None
}

fn hold_cycler_divergence(seed: u64) -> Option<String> {
    let mut rng = rng_for(seed, 8);
    let width = 1 + rng.gen_index(4);
    let hold = [2u64, 4, 8][rng.gen_index(3)];
    let values: Vec<u64> = (0..1 + rng.gen_index(5))
        .map(|_| rng.next_u64() & mask(width))
        .collect();
    let cg = HoldCycler::new(width, values, hold);
    let nl = bist_structural::hold_cycler(&cg).expect("structural hold cycler");
    let mut sim = SeqSim::new(&nl).expect("hold cycler sim");
    sim.drive_port("clr", 0);
    let mut enabled = 0u64;
    for cycle in 0..40 {
        let en = rng.gen_bool(0.8);
        sim.drive_port("en", u64::from(en));
        sim.eval_comb();
        let got = sim.read_port_lane("value", 0);
        let expect = cg.value_at(enabled);
        if got != Some(expect) {
            return Some(format!(
                "hold_cycler cycle {cycle} (enabled {enabled}): structural={got:?} behavioral={expect:#x}"
            ));
        }
        sim.step();
        if en {
            enabled += 1;
        }
    }
    None
}

fn control_unit_divergence(seed: u64) -> Option<String> {
    let mut rng = rng_for(seed, 9);
    let bits = 3 + rng.gen_index(4);
    let npat = 1 + rng.gen_below((1u64 << bits) - 1);
    let nl = bist_structural::control_unit(bits).expect("structural control unit");
    let mut sim = SeqSim::new(&nl).expect("control unit sim");
    sim.drive_port("rst", 0);
    sim.drive_port("npat", npat);
    sim.drive_port("start", 1);
    sim.step();
    sim.drive_port("start", 0);
    let mut enabled = 0u64;
    let mut ended = false;
    for _ in 0..(1u64 << bits) + 8 {
        sim.eval_comb();
        if sim.read_port_lane("end_test", 0) == Some(1) {
            ended = true;
            break;
        }
        if sim.read_port_lane("test_en", 0) == Some(1) {
            enabled += 1;
        }
        sim.step();
    }
    if !ended {
        return Some(format!("control_unit bits {bits} npat {npat}: never ended"));
    }
    let count = sim.read_port_lane("count", 0);
    if enabled != npat || count != Some(npat) {
        return Some(format!(
            "control_unit bits {bits} npat {npat}: structural enabled {enabled}, count {count:?}"
        ));
    }
    // Behavioral twin: same invariant, same command sequence.
    let mut cu = ControlUnit::new(bits);
    cu.command(BistCommand::Reset);
    cu.command(BistCommand::LoadPatternCount(npat));
    cu.command(BistCommand::Start);
    let mut b_enabled = 0u64;
    for _ in 0..(1u64 << bits) + 8 {
        if cu.end_test() {
            break;
        }
        if cu.test_enable() {
            b_enabled += 1;
        }
        cu.clock();
    }
    if b_enabled != enabled {
        return Some(format!(
            "control_unit bits {bits} npat {npat}: behavioral enabled {b_enabled}, structural {enabled}"
        ));
    }
    None
}

fn insert_bist_divergence(seed: u64, max_gates: usize) -> Option<String> {
    let mut rng = rng_for(seed, 10);
    let mut cfg = GeneratorConfig::sample(&mut rng, max_gates.min(50));
    cfg.inputs = 2 + rng.gen_index(5);
    let module = random_netlist(&mut rng, &cfg);
    let in_width = module.input_width();

    let alfsr_width = 4 + rng.gen_index(9);
    let misr_width = 4 + rng.gen_index(5);
    let use_cg = rng.gen_bool(0.5);
    let (cgs, wiring) = if use_cg {
        let cg_width = 1 + rng.gen_index(2.min(in_width));
        let hold = [2u64, 4][rng.gen_index(2)];
        let values: Vec<u64> = (0..2 + rng.gen_index(3))
            .map(|_| rng.next_u64() & mask(cg_width))
            .collect();
        let constrained: Vec<usize> = (0..cg_width).collect();
        (
            vec![HoldCycler::new(cg_width, values, hold)],
            PortWiring::with_cg(in_width, 0, &constrained),
        )
    } else {
        (Vec::new(), PortWiring::direct(in_width))
    };
    let spec = BistSpec {
        alfsr_width,
        misr_width,
        counter_bits: 6,
        cgs: cgs.clone(),
        wirings: vec![wiring.clone()],
    };
    let npat = 3 + rng.gen_below(30);

    let nl = bist_structural::insert_bist(&[&module], &spec).expect("insert_bist");
    let mut sim = SeqSim::new(&nl).expect("insert_bist sim");
    sim.drive_port("bist_rst", 0);
    sim.drive_port("bist_npat", npat);
    sim.drive_port("bist_sel", 0);
    sim.drive_port(&format!("{}_in", module.name()), 0);
    sim.drive_port("bist_start", 1);

    // Behavioral twin of the structural schedule.
    let mut alfsr = Alfsr::new(alfsr_width).expect("twin alfsr");
    let mut misr = Misr::new(misr_width);
    let mut rm = RefMachine::new(&module);
    let mut running = false;
    let mut start = true;
    let mut applied = 0u64;
    let mut enabled = 0u64;
    let out_port = format!("{}_out", module.name());

    for guard in 0u64.. {
        if guard > npat + 20 {
            return Some(format!(
                "insert_bist npat {npat}: no end after {guard} cycles"
            ));
        }
        sim.eval_comb();
        let done = applied == npat;
        let struct_end = sim.read_port_lane("bist_end", 0) == Some(1);
        if struct_end != done {
            return Some(format!(
                "insert_bist cycle {guard}: structural end={struct_end}, twin done={done}"
            ));
        }
        if done {
            let got = sim.read_port_lane("bist_out", 0);
            if got != Some(misr.signature()) {
                return Some(format!(
                    "insert_bist npat {npat}: structural signature={got:?} twin={:#x}",
                    misr.signature()
                ));
            }
            return None;
        }
        let test_en = running;
        let pattern: Vec<bool> = wiring
            .bits()
            .iter()
            .map(|src| match *src {
                BitSource::Alfsr(i) => (alfsr.state() >> (i % alfsr_width)) & 1 == 1,
                BitSource::Cg { cg, bit } => (cgs[cg].value_at(enabled) >> bit) & 1 == 1,
                BitSource::Const(b) => b,
            })
            .collect();
        let in_bits = if test_en {
            pattern
        } else {
            vec![false; in_width]
        };
        rm.set_inputs(&in_bits);
        rm.settle();
        let response = rm.outputs();
        let struct_out = sim.read_port_lane(&out_port, 0);
        let twin_out = response
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        if struct_out != Some(twin_out) {
            return Some(format!(
                "insert_bist cycle {guard}: structural module out={struct_out:?} twin={twin_out:#x}"
            ));
        }
        if test_en {
            misr.absorb(fold_xor(&response, misr_width));
            alfsr.step();
            enabled += 1;
            applied += 1;
        }
        running = running || start;
        start = false;
        rm.clock();
        sim.step();
        sim.drive_port("bist_start", 0);
    }
    unreachable!()
}

fn engine_divergence(seed: u64, max_gates: usize) -> Option<String> {
    let mut rng = rng_for(seed, 11);
    let mut cfg = GeneratorConfig::sample(&mut rng, max_gates.min(40)).comb();
    cfg.inputs = 2 + rng.gen_index(5);
    let module = random_netlist(&mut rng, &cfg);
    let in_width = module.input_width();
    let out_width = module.output_width();

    let alfsr_width = 4 + rng.gen_index(9);
    let misr_width = 4 + rng.gen_index(5);
    let cg = HoldCycler::new(2, vec![1, 2, 3], 3);
    let wiring = if in_width >= 2 && rng.gen_bool(0.5) {
        PortWiring::with_cg(in_width, 0, &[0, 1])
    } else {
        PortWiring::direct(in_width)
    };
    let mut engine = BistEngine::new(
        Alfsr::new(alfsr_width).expect("engine alfsr"),
        vec![Box::new(cg.clone())],
        vec![ModuleHookup {
            name: "mut".into(),
            wiring: wiring.clone(),
            output_width: out_width,
        }],
        BistEngineConfig {
            counter_bits: 8,
            misr_width,
        },
    );
    let sd = rng.next_u64() & mask(alfsr_width);
    engine.set_seed(sd);
    let npat = 5 + rng.gen_below(40);
    engine.begin(npat);

    // Closed-form reference: its own ALFSR stream, the naive interpreter
    // for the module, a fresh MISR fed through fold_xor.
    let mut stream = Alfsr::new(alfsr_width).expect("reference alfsr");
    stream.set_state(sd);
    stream.step();
    let mut ref_misr = Misr::new(misr_width);
    for t in 0..npat {
        let row: Vec<bool> = wiring
            .bits()
            .iter()
            .map(|src| match *src {
                BitSource::Alfsr(i) => (stream.state() >> (i % alfsr_width)) & 1 == 1,
                BitSource::Cg { cg: _, bit } => (cg.value_at(t) >> bit) & 1 == 1,
                BitSource::Const(b) => b,
            })
            .collect();
        let erow = engine.inputs(0);
        if erow != row {
            return Some(format!(
                "engine cycle {t}: engine row {erow:?} vs closed-form {row:?}"
            ));
        }
        let response = reference::eval_comb(&module, &erow);
        ref_misr.absorb(fold_xor(&response, misr_width));
        let done = engine.clock(&[response]);
        stream.step();
        if done != (t + 1 == npat) {
            return Some(format!("engine cycle {t}: done={done} npat={npat}"));
        }
    }
    if engine.signature(0) != ref_misr.signature() {
        return Some(format!(
            "engine signature {:#x} vs closed-form {:#x}",
            engine.signature(0),
            ref_misr.signature()
        ));
    }
    None
}

fn pair_bist(seed: u64, max_gates: usize) -> Vec<Mismatch> {
    let checks: [(&str, Option<String>); 7] = [
        ("alfsr", alfsr_divergence(seed)),
        ("misr", misr_divergence(seed)),
        ("xor_cascade", xor_cascade_divergence(seed)),
        ("hold_cycler", hold_cycler_divergence(seed)),
        ("control_unit", control_unit_divergence(seed)),
        ("insert_bist", insert_bist_divergence(seed, max_gates)),
        ("engine", engine_divergence(seed, max_gates)),
    ];
    checks
        .into_iter()
        .filter_map(|(what, d)| {
            d.map(|detail| Mismatch {
                pair: "bist",
                seed,
                detail: format!("{what}: {detail}"),
            })
        })
        .collect()
}

// -------------------------------------------------------------- pair: p1500

fn driver_divergence(seed: u64) -> Option<String> {
    let mut rng = rng_for(seed, 12);
    let sig_width = 4 + rng.gen_index(13);
    let needed = 1 + rng.gen_below(200);
    let mut drv = TapDriver::new(MockBackend::new(sig_width, needed));
    let mut reference = MockBackend::new(sig_width, needed);
    drv.reset();
    let compare = |step: usize, got: (bool, u64), want: (bool, u64)| -> Option<String> {
        if got != want {
            Some(format!(
                "driver step {step}: TAP status {got:?} vs direct backend {want:?}"
            ))
        } else {
            None
        }
    };
    for step in 0..16 {
        match rng.gen_index(8) {
            0 => {
                let n = rng.gen_below(1000);
                drv.bist_load_pattern_count(n);
                reference.command(BistCommand::LoadPatternCount(n));
            }
            1 => {
                drv.bist_start();
                reference.command(BistCommand::Start);
            }
            2 => {
                let m = rng.gen_index(4) as u8;
                drv.bist_select_result(m);
                reference.command(BistCommand::SelectResult(m));
            }
            3 => {
                let k = rng.gen_below(64);
                drv.run_functional(k);
                for _ in 0..k {
                    reference.functional_clock();
                }
            }
            4 => {
                // A TAP reset rewinds the protocol state machine but must
                // not disturb the backend.
                drv.reset();
            }
            5 => {
                // WBY: a bypass shift is a 1-TCK delay line.
                drv.load_tap_ir(TapInstruction::Bypass);
                let n = 3 + rng.gen_index(6);
                let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
                let out = drv.shift_dr(&bits);
                let mut want = vec![false];
                want.extend_from_slice(&bits[..n - 1]);
                if out != want {
                    return Some(format!(
                        "driver step {step}: bypass shift {out:?} vs delayed {want:?}"
                    ));
                }
            }
            6 => {
                drv.bist_command(BistCommand::Reset);
                reference.command(BistCommand::Reset);
            }
            _ => {
                let got = drv.read_status();
                let want = (reference.end_test(), reference.selected_signature());
                if let Some(d) = compare(step, got, want) {
                    return Some(d);
                }
            }
        }
    }
    // Deterministic tail: run to completion and verify the final word.
    drv.bist_command(BistCommand::Reset);
    reference.command(BistCommand::Reset);
    let n = 1 + rng.gen_below(500);
    drv.bist_load_pattern_count(n);
    reference.command(BistCommand::LoadPatternCount(n));
    drv.bist_start();
    reference.command(BistCommand::Start);
    drv.run_functional(needed);
    for _ in 0..needed {
        reference.functional_clock();
    }
    let m = rng.gen_index(4) as u8;
    drv.bist_select_result(m);
    reference.command(BistCommand::SelectResult(m));
    let got = drv.read_status();
    let want = (reference.end_test(), reference.selected_signature());
    if !got.0 {
        return Some(format!("driver tail: not done after {needed} cycles"));
    }
    compare(usize::MAX, got, want)
}

fn wrap_core_divergence(seed: u64, max_gates: usize) -> Option<String> {
    let mut rng = rng_for(seed, 13);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates.min(40)).comb();
    let core = random_netlist(&mut rng, &cfg);
    let n = core.input_width();
    let m = core.output_width();
    let wrapped = p1500_structural::wrap_core(&core).expect("wrap_core");
    let mut sim = SeqSim::new(&wrapped).expect("wrapped sim");

    // Reference chain model: 3 WIR shift stages, per-input shift+update
    // stages, per-output capture stages — one chain wsi → wso.
    let mut wir_shift = [false; 3];
    let mut in_shift = vec![false; n];
    let mut in_upd = vec![false; n];
    let mut out_shift = vec![false; m];

    for cycle in 0..48 {
        let wsi = rng.gen_bool(0.5);
        let shift = rng.gen_bool(0.6);
        let capture = rng.gen_bool(0.2);
        let update = rng.gen_bool(0.2);
        let test = rng.gen_bool(0.5);
        let func = rng.next_u64() & mask(n);
        sim.drive_port("wsi", u64::from(wsi));
        sim.drive_port("wrap_shift", u64::from(shift));
        sim.drive_port("wrap_capture", u64::from(capture));
        sim.drive_port("wrap_update", u64::from(update));
        sim.drive_port("wrap_test", u64::from(test));
        sim.drive_port("in", func);
        sim.eval_comb();

        let core_in: Vec<bool> = (0..n)
            .map(|j| {
                if test {
                    in_upd[j]
                } else {
                    (func >> j) & 1 == 1
                }
            })
            .collect();
        let core_out = reference::eval_comb(&core, &core_in);
        let wso_want = if m > 0 {
            out_shift[m - 1]
        } else {
            in_shift[n - 1]
        };
        let wso_got = sim.read_port_lane("wso", 0);
        if wso_got != Some(u64::from(wso_want)) {
            return Some(format!(
                "wrap_core cycle {cycle}: wso structural={wso_got:?} reference={wso_want}"
            ));
        }
        let out_want = core_out
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        let out_got = sim.read_port_lane("out", 0);
        if out_got != Some(out_want) {
            return Some(format!(
                "wrap_core cycle {cycle}: core out structural={out_got:?} reference={out_want:#x} (test={test})"
            ));
        }

        // Clock edge on the reference model (everything from old state).
        let old_wir = wir_shift;
        let old_in_shift = in_shift.clone();
        let old_out_shift = out_shift.clone();
        if shift {
            wir_shift = [wsi, old_wir[0], old_wir[1]];
        }
        let mut chain_in = old_wir[2];
        for j in 0..n {
            if shift {
                in_shift[j] = chain_in;
            }
            if update {
                in_upd[j] = old_in_shift[j];
            }
            chain_in = old_in_shift[j];
        }
        for j in 0..m {
            if capture {
                out_shift[j] = core_out[j];
            } else if shift {
                out_shift[j] = chain_in;
            }
            chain_in = old_out_shift[j];
        }
        sim.clock();
    }
    None
}

fn pair_p1500(seed: u64, max_gates: usize) -> Vec<Mismatch> {
    let mut out = Vec::new();
    if let Some(d) = driver_divergence(seed) {
        out.push(Mismatch {
            pair: "p1500",
            seed,
            detail: format!("driver: {d}"),
        });
    }
    if let Some(d) = wrap_core_divergence(seed, max_gates) {
        out.push(Mismatch {
            pair: "p1500",
            seed,
            detail: format!("wrap_core: {d}"),
        });
    }
    out
}

// ------------------------------------------------------------- pair: kernel

/// Compares the compiled-kernel `CombFaultSim` engine on `candidate`
/// against the graph-walking engine on `golden` under a shared pattern
/// set, with syndrome collection on so post-detection events are checked
/// too. With `golden == candidate` this is the plain conformance check;
/// with a mutated candidate it is the detector the kernel mutation
/// self-test validates.
///
/// The good machine is compared first, lane by lane, against the tier-0
/// bit-level reference. Fault detections alone are blind to some good
/// machine bugs: collapsing hoists an output net's stuck-at injections
/// upstream, so an engine that consistently inverted a primary output
/// would leave every collapsed detection index untouched.
pub fn kernel_comb_divergence(
    golden: &Netlist,
    candidate: &Netlist,
    probe_seed: u64,
) -> Option<String> {
    assert_eq!(golden.input_width(), candidate.input_width());
    let mut rng = rng_for(probe_seed, 14);
    let g_universe = FaultUniverse::stuck_at(golden);
    let c_universe = FaultUniverse::stuck_at(candidate);
    assert_eq!(g_universe.len(), c_universe.len());
    let width = golden.input_width();
    let rows: Vec<Vec<bool>> = (0..72)
        .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let kernel = compile(candidate).expect("candidate compiles");
    for (block, chunk) in rows.chunks(64).enumerate() {
        let mut values = kernel.fresh_values();
        for (lane, row) in chunk.iter().enumerate() {
            for (&pi, &bit) in kernel.pis().iter().zip(row) {
                values[pi as usize] |= (bit as u64) << lane;
            }
        }
        kernel.eval(&mut values);
        for (lane, row) in chunk.iter().enumerate() {
            let expect = reference::eval_comb(golden, row);
            for (oi, &po) in kernel.pos().iter().enumerate() {
                let got = (values[po as usize] >> lane) & 1 == 1;
                if got != expect[oi] {
                    return Some(format!(
                        "comb good machine: pattern {} output {oi}: kernel={got} reference={}",
                        block * 64 + lane,
                        expect[oi]
                    ));
                }
            }
        }
    }
    let patterns = PatternSet::from_rows(width, &rows);
    let run = |universe: &FaultUniverse, engine: SimEngine| {
        CombFaultSim::new(universe)
            .with_engine(engine)
            .with_parallelism(ParallelPolicy::serial())
            .with_syndromes()
            .run_stuck_at(&patterns)
            .expect("comb fault sim")
    };
    let graph = run(&g_universe, SimEngine::Graph);
    let kernel = run(&c_universe, SimEngine::Kernel);
    for (fi, (g, k)) in graph.detection.iter().zip(&kernel.detection).enumerate() {
        if g != k {
            return Some(format!(
                "comb fault {fi} ({}): graph={g:?} kernel={k:?}",
                g_universe.describe(fi)
            ));
        }
    }
    if graph.syndromes != kernel.syndromes {
        return Some("comb: syndrome streams diverge".into());
    }
    None
}

/// Compares the kernel `SeqFaultSim` window engine on `candidate` against
/// the graph engine on `golden` under shared stimulus, across both
/// observation modes (per-cycle outputs and an off-boundary MISR read
/// schedule), with and without syndrome collection.
pub fn kernel_seq_divergence(
    golden: &Netlist,
    candidate: &Netlist,
    probe_seed: u64,
) -> Option<String> {
    assert_eq!(golden.input_width(), candidate.input_width());
    let mut rng = rng_for(probe_seed, 15);
    let g_universe = FaultUniverse::stuck_at(golden);
    let c_universe = FaultUniverse::stuck_at(candidate);
    assert_eq!(g_universe.len(), c_universe.len());
    let width = golden.input_width();
    let cycles = 40u64;
    let words: Vec<u64> = (0..cycles).map(|_| rng.next_u64() & mask(width)).collect();
    // `read_every: 7` leaves the final read off the boundary grid, and
    // `window: 16` splits the run so window seams are exercised too.
    let misr_width = golden.output_width().clamp(2, 16);
    let modes: [(&str, ObserveMode, bool); 3] = [
        ("outputs", ObserveMode::Outputs, false),
        ("outputs+syndromes", ObserveMode::Outputs, true),
        ("misr", ObserveMode::misr_default(misr_width, 7), true),
    ];
    for (what, observe, collect) in modes {
        let run = |universe: &FaultUniverse, engine: SimEngine| {
            let config = SeqFaultSimConfig {
                window: 16,
                observe: observe.clone(),
                collect_syndromes: collect,
                parallel: ParallelPolicy::serial(),
                engine,
                ..Default::default()
            };
            SeqFaultSim::new(universe, config)
                .run(&mut VectorStimulus::new(words.clone()))
                .expect("seq fault sim")
        };
        let graph = run(&g_universe, SimEngine::Graph);
        let kernel = run(&c_universe, SimEngine::Kernel);
        for (fi, (g, k)) in graph.detection.iter().zip(&kernel.detection).enumerate() {
            if g != k {
                return Some(format!(
                    "seq {what} fault {fi} ({}): graph={g:?} kernel={k:?}",
                    g_universe.describe(fi)
                ));
            }
        }
        if graph.syndromes != kernel.syndromes {
            return Some(format!("seq {what}: syndrome streams diverge"));
        }
        if graph.stats.survivors != kernel.stats.survivors {
            return Some(format!(
                "seq {what}: survivor trajectories diverge (graph {:?} kernel {:?})",
                graph.stats.survivors, kernel.stats.survivors
            ));
        }
    }
    None
}

fn pair_kernel(seed: u64, max_gates: usize) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let mut rng = rng_for(seed, 16);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates.min(60)).comb();
    let nl = random_netlist(&mut rng, &cfg);
    if let Some(d) = kernel_comb_divergence(&nl, &nl, seed) {
        out.push(Mismatch {
            pair: "kernel",
            seed,
            detail: d,
        });
    }
    let mut rng = rng_for(seed, 17);
    let cfg = GeneratorConfig::sample(&mut rng, max_gates.min(40));
    let cfg = cfg.seq(&mut rng);
    let nl = random_netlist(&mut rng, &cfg);
    if let Some(d) = kernel_seq_divergence(&nl, &nl, seed) {
        out.push(Mismatch {
            pair: "kernel",
            seed,
            detail: d,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_few_seeds_run_clean() {
        for seed in 0..4u64 {
            let ms = run_all_pairs(seed, 60);
            assert!(ms.is_empty(), "seed {seed}: {ms:?}");
        }
    }

    #[test]
    fn divergence_waveform_is_loadable_and_deterministic() {
        use soctest_obs::VcdReader;

        let nl = sim_comb_netlist(7, 40);
        let a = divergence_vcd(&nl, 7);
        let b = divergence_vcd(&nl, 7);
        assert_eq!(a, b, "same netlist and seed give the same waveform");
        let reader = VcdReader::parse(&a).expect("vcd parses");
        let first = nl.ports()[0].name().to_owned();
        // Three probe rounds → values exist at every timestep.
        for t in 0..3 {
            assert!(
                reader
                    .value_at(&format!("{}.{first}", nl.name()), t)
                    .is_some(),
                "value at round {t}"
            );
        }
    }
}
