//! Differential conformance harness for the BIST/P1500 stack.
//!
//! The repo contains several *independently implemented* pairs of engines
//! that must agree bit for bit: the 64-lane simulators vs a naive
//! interpreter, the fault simulators' zero-fault good machines vs `sim`,
//! behavioral BIST blocks vs their `bist::structural` netlists, and the
//! TAP/P1500 driver vs the structural wrapper. This crate fuzzes all of
//! them with seeded random netlists and a deliberately naive reference
//! model, so that the next silent divergence (PR 2 caught two by hand) is
//! found by a machine.
//!
//! Layout:
//! * [`generator`] — seeded random netlist/FSM generator;
//! * [`reference`] — the naive fixpoint interpreter ([`RefMachine`]);
//! * [`pairs`] — one differential runner per redundant engine pair;
//! * [`selftest`] — mutation self-test that verifies the oracle itself;
//! * [`report`] — mismatch reports, netlist dump/replay, and the greedy
//!   minimizer;
//! * [`fleet`] — fleet-vs-standalone leg: sampled fleet dies replayed as
//!   from-scratch gate-level sessions, verdicts compared exactly.
//!
//! The `difftest` binary drives everything:
//!
//! ```text
//! cargo run --release -p soctest-conformance --bin difftest -- --seeds 100
//! cargo run --release -p soctest-conformance --bin difftest -- --self-test
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod generator;
pub mod pairs;
pub mod reference;
pub mod report;
pub mod selftest;

pub use fleet::{fleet_difftest, FleetDiffOutcome, FleetMismatch};
pub use generator::{random_netlist, GeneratorConfig};
pub use pairs::{run_all_pairs, PAIR_NAMES};
pub use reference::RefMachine;
pub use report::{dump_netlist, minimize, parse_netlist, render_report, Mismatch};
pub use selftest::{mutation_self_test, MutationOutcome};
