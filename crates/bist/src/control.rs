//! The BIST control unit (behavioral model).

/// Commands the control unit accepts (in the silicon these arrive through
/// the P1500 wrapper's WCDR register — see `soctest-p1500`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BistCommand {
    /// Return to idle, clear the pattern counter and signatures.
    Reset,
    /// Load the number of patterns to apply (truncated to the counter
    /// width).
    LoadPatternCount(u64),
    /// Start pattern application.
    Start,
    /// Select which result register the output selector exposes.
    SelectResult(u8),
}

impl BistCommand {
    /// The command's mnemonic, for trace events and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            BistCommand::Reset => "Reset",
            BistCommand::LoadPatternCount(_) => "LoadPatternCount",
            BistCommand::Start => "Start",
            BistCommand::SelectResult(_) => "SelectResult",
        }
    }

    /// The command's operand (0 for operand-less commands).
    pub fn operand(self) -> u64 {
        match self {
            BistCommand::LoadPatternCount(n) => n,
            BistCommand::SelectResult(s) => s.into(),
            _ => 0,
        }
    }
}

/// The test-execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BistPhase {
    /// Waiting for a start command.
    #[default]
    Idle,
    /// Applying patterns (`test_enable` asserted).
    Running,
    /// All patterns applied (`end_test` asserted).
    Done,
}

/// Behavioral model of the BIST control unit: a pattern counter
/// (12 bits in the case study, allowing up to 4,096 patterns per
/// execution), the `test_enable`/`end_test` handshake, and result
/// selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlUnit {
    counter_bits: usize,
    target: u64,
    counter: u64,
    phase: BistPhase,
    result_select: u8,
}

impl ControlUnit {
    /// A control unit with the given pattern-counter width (1..=32).
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is outside 1..=32.
    pub fn new(counter_bits: usize) -> Self {
        assert!((1..=32).contains(&counter_bits), "counter width 1..=32");
        ControlUnit {
            counter_bits,
            target: 0,
            counter: 0,
            phase: BistPhase::Idle,
            result_select: 0,
        }
    }

    /// Counter width in bits.
    pub fn counter_bits(&self) -> usize {
        self.counter_bits
    }

    /// Maximum pattern count (`2^counter_bits`).
    pub fn max_patterns(&self) -> u64 {
        1u64 << self.counter_bits
    }

    /// Applies a command.
    pub fn command(&mut self, cmd: BistCommand) {
        match cmd {
            BistCommand::Reset => {
                self.counter = 0;
                self.phase = BistPhase::Idle;
            }
            BistCommand::LoadPatternCount(n) => {
                self.target = n.min(self.max_patterns());
            }
            BistCommand::Start => {
                if self.phase == BistPhase::Idle && self.target > 0 {
                    self.counter = 0;
                    self.phase = BistPhase::Running;
                }
            }
            BistCommand::SelectResult(s) => {
                self.result_select = s;
            }
        }
    }

    /// One clock: counts applied patterns while running.
    pub fn clock(&mut self) {
        if self.phase == BistPhase::Running {
            self.counter += 1;
            if self.counter >= self.target {
                self.phase = BistPhase::Done;
            }
        }
    }

    /// Whether patterns are being applied this cycle.
    pub fn test_enable(&self) -> bool {
        self.phase == BistPhase::Running
    }

    /// Whether the test has finished.
    pub fn end_test(&self) -> bool {
        self.phase == BistPhase::Done
    }

    /// The current phase.
    pub fn phase(&self) -> BistPhase {
        self.phase
    }

    /// Patterns applied so far.
    pub fn pattern_counter(&self) -> u64 {
        self.counter
    }

    /// The loaded pattern target.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// The result-selection value (drives the output selector).
    pub fn result_select(&self) -> u8 {
        self.result_select
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_test_sequence() {
        let mut cu = ControlUnit::new(12);
        assert_eq!(cu.max_patterns(), 4096);
        cu.command(BistCommand::LoadPatternCount(10));
        assert!(!cu.test_enable());
        cu.command(BistCommand::Start);
        assert!(cu.test_enable());
        for _ in 0..9 {
            cu.clock();
            assert!(!cu.end_test());
        }
        cu.clock();
        assert!(cu.end_test());
        assert!(!cu.test_enable());
        assert_eq!(cu.pattern_counter(), 10);
    }

    #[test]
    fn start_requires_a_target() {
        let mut cu = ControlUnit::new(12);
        cu.command(BistCommand::Start);
        assert_eq!(cu.phase(), BistPhase::Idle);
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut cu = ControlUnit::new(8);
        cu.command(BistCommand::LoadPatternCount(4));
        cu.command(BistCommand::Start);
        cu.clock();
        cu.command(BistCommand::Reset);
        assert_eq!(cu.phase(), BistPhase::Idle);
        assert_eq!(cu.pattern_counter(), 0);
        // Target persists across reset, as a loaded configuration register.
        assert_eq!(cu.target(), 4);
    }

    #[test]
    fn target_saturates_at_counter_capacity() {
        let mut cu = ControlUnit::new(4);
        cu.command(BistCommand::LoadPatternCount(1_000_000));
        assert_eq!(cu.target(), 16);
    }

    #[test]
    fn result_select_round_trips() {
        let mut cu = ControlUnit::new(12);
        cu.command(BistCommand::SelectResult(2));
        assert_eq!(cu.result_select(), 2);
    }
}
