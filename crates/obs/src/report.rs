//! Self-contained HTML report assembly.
//!
//! [`HtmlReport`] stitches titled sections of pre-rendered HTML (stat
//! tiles, tables, the inline-SVG charts from [`crate::svg`]) into a single
//! document with **zero external references**: no scripts, no links, no
//! fonts, no images — the file can be mailed, archived, or opened from an
//! air-gapped machine and render identically. The palette ships as CSS
//! custom properties with a `prefers-color-scheme` dark block, so one
//! document serves both modes.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};
use crate::svg::escape;

/// Builder for one self-contained HTML report document.
#[derive(Debug, Clone, Default)]
pub struct HtmlReport {
    title: String,
    subtitle: String,
    sections: Vec<(String, String)>,
}

impl HtmlReport {
    /// A report with the given document title.
    pub fn new(title: &str) -> Self {
        HtmlReport {
            title: title.to_owned(),
            subtitle: String::new(),
            sections: Vec::new(),
        }
    }

    /// Sets the one-line subtitle under the main heading.
    pub fn set_subtitle(&mut self, subtitle: &str) {
        self.subtitle = subtitle.to_owned();
    }

    /// Appends a titled section of pre-rendered (trusted) HTML.
    pub fn add_section(&mut self, title: &str, body_html: String) {
        self.sections.push((title.to_owned(), body_html));
    }

    /// Number of sections added so far.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Renders the complete document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        out.push_str(&format!("<title>{}</title>\n", escape(&self.title)));
        out.push_str("<style>\n");
        out.push_str(STYLE);
        out.push_str("</style>\n</head>\n<body class=\"viz-root\">\n");
        out.push_str(&format!("<h1>{}</h1>\n", escape(&self.title)));
        if !self.subtitle.is_empty() {
            out.push_str(&format!(
                "<p class=\"subtitle\">{}</p>\n",
                escape(&self.subtitle)
            ));
        }
        for (title, body) in &self.sections {
            out.push_str(&format!(
                "<section>\n<h2>{}</h2>\n{}\n</section>\n",
                escape(title),
                body
            ));
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

/// Renders a row of stat tiles: `(label, value)` pairs.
pub fn stat_tiles(tiles: &[(String, String)]) -> String {
    let mut out = String::from("<div class=\"tiles\">");
    for (label, value) in tiles {
        out.push_str(&format!(
            "<div class=\"tile\"><div class=\"tile-value\">{}</div><div class=\"tile-label\">{}</div></div>",
            escape(value),
            escape(label)
        ));
    }
    out.push_str("</div>");
    out
}

/// Renders an HTML table. Cell text is escaped.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><thead><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", escape(h)));
    }
    out.push_str("</tr></thead><tbody>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            out.push_str(&format!("<td>{}</td>", escape(cell)));
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table>");
    out
}

/// Renders an escaped paragraph.
pub fn paragraph(text: &str) -> String {
    format!("<p>{}</p>", escape(text))
}

/// One event reconstructed from a JSONL trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Emission sequence number.
    pub seq: u64,
    /// Cycle stamp (cumulative TCK for session traces).
    pub cycle: u64,
    /// Event type name.
    pub event: String,
    /// Remaining fields, rendered as `key=value` pairs.
    pub detail: String,
}

fn scalar_to_string(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_owned(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => {
            if (n - n.round()).abs() < 1e-9 && n.abs() < 9e15 {
                format!("{}", n.round() as i64)
            } else {
                n.to_string()
            }
        }
        JsonValue::String(s) => s.clone(),
        JsonValue::Array(_) | JsonValue::Object(_) => "…".to_owned(),
    }
}

/// Reconstructs a session timeline from a JSON-Lines trace (the format
/// `JsonLinesSink` / `TraceRecord::to_json_line` emit). Unparseable lines
/// are skipped; events come back ordered by sequence number.
pub fn timeline_from_jsonl(text: &str) -> Vec<TimelineEvent> {
    let mut events: Vec<TimelineEvent> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(JsonValue::Object(map)) = json::parse(line) else {
            continue;
        };
        let get_u64 = |m: &BTreeMap<String, JsonValue>, k: &str| {
            m.get(k).and_then(JsonValue::as_u64).unwrap_or(0)
        };
        let event = map
            .get("event")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_owned();
        let detail = map
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "seq" | "cycle" | "depth" | "event"))
            .map(|(k, v)| format!("{k}={}", scalar_to_string(v)))
            .collect::<Vec<_>>()
            .join(" ");
        events.push(TimelineEvent {
            seq: get_u64(&map, "seq"),
            cycle: get_u64(&map, "cycle"),
            event,
            detail,
        });
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// True when `html` carries no external references: nothing fetched over
/// a URL, no local file links, and no scripting at all.
pub fn is_self_contained(html: &str) -> bool {
    const FORBIDDEN: [&str; 5] = ["http://", "https://", "file://", "<script", "<link"];
    FORBIDDEN.iter().all(|n| !html.contains(n)) && html.contains("</html>")
}

/// Document stylesheet: palette as CSS custom properties (light values,
/// dark overrides under `prefers-color-scheme`), system font stack, chart
/// classes consumed by [`crate::svg`].
const STYLE: &str = r#"
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --seq0: #cde2fb; --seq1: #9ec5f4; --seq2: #6da7ec; --seq3: #3987e5;
  --seq4: #2a78d6; --seq5: #256abf; --seq6: #184f95; --seq7: #0d366b;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --border: rgba(255,255,255,0.10);
  }
}
body.viz-root {
  margin: 0 auto; padding: 24px; max-width: 880px;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.5;
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 12px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 20px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 16px; min-width: 110px;
}
.tile-value { font-size: 20px; font-weight: 600; }
.tile-label { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; width: 100%; margin: 8px 0; }
th, td {
  text-align: left; padding: 4px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 600; }
ul.advice { margin: 8px 0; padding-left: 20px; }
ul.advice li { margin: 6px 0; }
.strategy {
  font-weight: 600; border: 1px solid var(--border);
  border-radius: 4px; padding: 0 6px;
}
svg.chart { display: block; margin: 8px 0; }
svg.chart text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
svg.chart .title { font-size: 13px; font-weight: 600; }
svg.chart .tick { font-size: 11px; }
svg.chart .ink { fill: var(--text-primary); }
svg.chart .muted { fill: var(--text-secondary); }
svg.chart .grid { stroke: var(--grid); stroke-width: 1; }
svg.chart .axis { stroke: var(--baseline); stroke-width: 1; }
svg.chart .line { stroke-width: 2; stroke-linejoin: round; }
svg.chart .s1 { stroke: var(--series-1); }
svg.chart .s2 { stroke: var(--series-2); }
svg.chart .s3 { stroke: var(--series-3); }
svg.chart .fill-s1 { fill: var(--series-1); }
svg.chart .fill-s2 { fill: var(--series-2); }
svg.chart .fill-s3 { fill: var(--series-3); }
svg.chart .seq0 { fill: var(--seq0); } svg.chart .seq1 { fill: var(--seq1); }
svg.chart .seq2 { fill: var(--seq2); } svg.chart .seq3 { fill: var(--seq3); }
svg.chart .seq4 { fill: var(--seq4); } svg.chart .seq5 { fill: var(--seq5); }
svg.chart .seq6 { fill: var(--seq6); } svg.chart .seq7 { fill: var(--seq7); }
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_titled_sections_in_order() {
        let mut r = HtmlReport::new("Campaign <report>");
        r.set_subtitle("quick budget");
        r.add_section("Overview", stat_tiles(&[("faults".into(), "3138".into())]));
        r.add_section("Advisor", paragraph("all good"));
        let html = r.render();
        assert!(html.contains("<title>Campaign &lt;report&gt;</title>"));
        assert!(html.find("Overview").unwrap() < html.find("Advisor").unwrap());
        assert!(html.contains("3138"));
        assert_eq!(r.section_count(), 2);
    }

    #[test]
    fn rendered_document_is_self_contained() {
        let mut r = HtmlReport::new("t");
        r.add_section("s", table(&["a"], &[vec!["1".into()]]));
        let html = r.render();
        assert!(is_self_contained(&html), "{html}");
    }

    #[test]
    fn self_containment_rejects_external_references() {
        for bad in [
            "<html><a href=\"http://x\"></a></html>",
            "<html><img src=\"https://x\"></html>",
            "<html><a href=\"file:///etc\"></a></html>",
            "<html><script>1</script></html>",
            "<html><link rel=\"stylesheet\"></html>",
            "<html>no closing tag",
        ] {
            assert!(!is_self_contained(bad), "{bad}");
        }
    }

    #[test]
    fn table_escapes_cells() {
        let html = table(&["<h>"], &[vec!["<&>".into()]]);
        assert!(html.contains("&lt;h&gt;"));
        assert!(html.contains("&lt;&amp;&gt;"));
    }

    #[test]
    fn timeline_parses_and_orders_jsonl() {
        let text = concat!(
            "{\"seq\":1,\"cycle\":40,\"depth\":0,\"event\":\"Quarantine\",\"module\":2}\n",
            "not json\n",
            "{\"seq\":0,\"cycle\":0,\"depth\":0,\"event\":\"SessionStart\",\"patterns\":192,\"modules\":3}\n",
        );
        let events = timeline_from_jsonl(text);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "SessionStart");
        assert_eq!(events[0].detail, "modules=3 patterns=192");
        assert_eq!(events[1].cycle, 40);
        assert_eq!(events[1].detail, "module=2");
    }
}
