//! End-to-end cost of regenerating the cheap tables (1, 2, 4) — the
//! structural/area/timing pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use soctest_core::casestudy::CaseStudy;
use soctest_core::experiments;
use soctest_tech::Library;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1", |b| {
        let case = CaseStudy::paper().unwrap();
        b.iter(|| experiments::table1(&case).len())
    });
    group.bench_function("table2_area", |b| {
        let case = CaseStudy::paper().unwrap();
        let lib = Library::cmos_130nm();
        b.iter(|| experiments::table2(&case, &lib).unwrap().core_um2)
    });
    group.bench_function("table4_sta", |b| {
        let case = CaseStudy::paper().unwrap();
        let lib = Library::cmos_130nm();
        b.iter(|| experiments::table4(&case, &lib).unwrap().original_mhz)
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
