//! Time-frame expansion for sequential ATPG.

use soctest_netlist::{GateKind, NetId, Netlist, NetlistError, PortDir};

use crate::scan::ScanView;

/// A sequential netlist unrolled over a fixed number of time frames.
///
/// Frame 0's state comes from unassignable `state0` inputs (the machine
/// starts in an unknown state); each later frame's state inputs are wired
/// to the previous frame's next-state nets. Primary outputs of *every*
/// frame are observable — a sequential test observes the outputs on each
/// cycle.
#[derive(Debug, Clone)]
pub struct UnrolledView {
    /// The flat combinational unrolled netlist.
    pub view: Netlist,
    /// Number of frames.
    pub frames: usize,
    /// For each frame, the mapping from template net id to unrolled net id.
    pub frame_map: Vec<Vec<NetId>>,
    /// Per-frame primary-input nets (original PI order).
    pub pi_frames: Vec<Vec<NetId>>,
    /// Assignability mask over the unrolled view's primary inputs: `false`
    /// for the unknown initial state.
    pub assignable: Vec<bool>,
}

impl UnrolledView {
    /// Maps a net of the *template* (the sequential netlist's combinational
    /// frame, which shares net ids with the sequential netlist) into frame
    /// `f` of the unrolled view.
    pub fn map_net(&self, f: usize, net: NetId) -> NetId {
        self.frame_map[f][net.index()]
    }
}

/// Unrolls `netlist` over `frames` time frames.
///
/// # Errors
///
/// Propagates view-construction and validation errors.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn unroll(netlist: &Netlist, frames: usize) -> Result<UnrolledView, NetlistError> {
    assert!(frames > 0, "at least one frame");
    let template = ScanView::of(netlist)?;
    let t = &template.view;
    let ndff = template.ppis.len();

    let mut view = Netlist::new(format!("{}_x{}", netlist.name(), frames));
    // Unknown initial state.
    let state0: Vec<NetId> = (0..ndff)
        .map(|i| {
            let id = view.add_gate(GateKind::Input, vec![]);
            view.set_label(id, format!("state0[{i}]"));
            id
        })
        .collect();
    if !state0.is_empty() {
        view.add_port(PortDir::Input, "state0", state0.clone())?;
    }

    let template_pis: Vec<NetId> = t
        .input_ports()
        .iter()
        .filter(|p| p.name() != "ppi")
        .flat_map(|p| p.bits().iter().copied())
        .collect();
    let is_ppi: Vec<bool> = {
        let mut v = vec![false; t.len()];
        for &p in &template.ppis {
            v[p.index()] = true;
        }
        v
    };
    let ppi_pos: Vec<usize> = {
        let mut v = vec![0usize; t.len()];
        for (i, &p) in template.ppis.iter().enumerate() {
            v[p.index()] = i;
        }
        v
    };
    let is_pi: Vec<bool> = {
        let mut v = vec![false; t.len()];
        for &p in &template_pis {
            v[p.index()] = true;
        }
        v
    };

    let mut frame_map: Vec<Vec<NetId>> = Vec::with_capacity(frames);
    let mut pi_frames: Vec<Vec<NetId>> = Vec::with_capacity(frames);
    let mut prev_state: Vec<NetId> = state0;
    let mut all_pos: Vec<NetId> = Vec::new();

    for f in 0..frames {
        let mut map = vec![NetId(0); t.len()];
        let mut frame_pis = Vec::with_capacity(template_pis.len());
        for (id, gate) in t.iter() {
            let mapped = if is_ppi[id.index()] {
                prev_state[ppi_pos[id.index()]]
            } else if is_pi[id.index()] {
                let pi = view.add_gate(GateKind::Input, vec![]);
                view.set_label(pi, format!("f{f}.{}", t.describe(id)));
                frame_pis.push(pi);
                pi
            } else {
                let pins = gate.pins.iter().map(|p| map[p.index()]).collect();
                view.add_gate_unchecked(gate.kind, pins)
            };
            map[id.index()] = mapped;
        }
        if !frame_pis.is_empty() {
            view.add_port(PortDir::Input, format!("pi{f}"), frame_pis.clone())?;
        }
        for port in t.output_ports() {
            if port.name() == "ppo" {
                continue;
            }
            let bits: Vec<NetId> = port.bits().iter().map(|b| map[b.index()]).collect();
            all_pos.extend(bits.iter().copied());
            view.add_port(PortDir::Output, format!("f{f}.{}", port.name()), bits)?;
        }
        prev_state = template.ppos.iter().map(|p| map[p.index()]).collect();
        frame_map.push(map);
        pi_frames.push(frame_pis);
    }
    view.validate()?;
    view.levelize()?;

    let mut assignable = Vec::new();
    for port in view.input_ports() {
        let ok = port.name() != "state0";
        assignable.extend(std::iter::repeat_n(ok, port.width()));
    }

    Ok(UnrolledView {
        view,
        frames,
        frame_map,
        pi_frames,
        assignable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_netlist::ModuleBuilder;
    use soctest_sim::CombSim;

    fn toggler() -> Netlist {
        // q' = q XOR en; out = q.
        let mut mb = ModuleBuilder::new("tog");
        let en = mb.input("en");
        let q = mb.dff_bank(1);
        let nxt = mb.xor(q[0], en);
        mb.connect(&q, &[nxt]);
        mb.output("out", q[0]);
        mb.finish().unwrap()
    }

    #[test]
    fn unrolled_shape() {
        let nl = toggler();
        let u = unroll(&nl, 3).unwrap();
        assert_eq!(u.frames, 3);
        assert_eq!(u.pi_frames.len(), 3);
        assert_eq!(u.view.dff_count(), 0);
        // state0 (1 bit) + 3 frame PIs.
        assert_eq!(u.view.primary_inputs().len(), 4);
        assert_eq!(u.assignable, vec![false, true, true, true]);
    }

    #[test]
    fn unrolled_semantics_match_iteration() {
        let nl = toggler();
        let u = unroll(&nl, 3).unwrap();
        let mut sim = CombSim::new(&u.view).unwrap();
        // state0 = 0, en = 1 in every frame: q toggles 0,1,0 → outputs.
        let pis = u.view.primary_inputs();
        sim.set(pis[0], 0); // state0
        for f in 0..3 {
            sim.set(u.pi_frames[f][0], u64::MAX);
        }
        sim.eval(&u.view);
        let out = |f: usize| {
            let p = u.view.port(&format!("f{f}.out")).unwrap().bits()[0];
            sim.get(p) & 1
        };
        assert_eq!(out(0), 0);
        assert_eq!(out(1), 1);
        assert_eq!(out(2), 0);
    }

    #[test]
    fn map_net_translates_frames() {
        let nl = toggler();
        let u = unroll(&nl, 2).unwrap();
        let q = nl.dffs()[0];
        let q_f1 = u.map_net(1, q);
        // Frame 1's state input is frame 0's next-state net, a XOR gate.
        assert_eq!(u.view.gate(q_f1).kind, soctest_netlist::GateKind::Xor);
    }
}
