//! Differential conformance fuzzer.
//!
//! ```text
//! difftest [--seeds N] [--max-gates G] [--start-seed S]
//!          [--self-test] [--replay FILE] [--out FILE] [--vcd-on-failure]
//!          [--report-on-failure] [--fleet] [--fleet-dies N]
//! ```
//!
//! Default mode fuzzes all five engine pairs over `N` seeds and writes a
//! machine-readable JSON report. On the first `sim`-pair mismatch the
//! failing netlist is minimized and dumped next to the report for
//! `--replay`; with `--vcd-on-failure` the probe stimulus is additionally
//! replayed on the minimized netlist and written as a VCD waveform; with
//! `--report-on-failure` a self-contained HTML triage report (mismatch
//! table grouped per engine pair) is written next to the JSON one. Exit
//! status is non-zero on any mismatch (or, with `--self-test`, on any
//! undetected mutation).
//!
//! `--fleet` runs the fleet conformance leg instead: `--fleet-dies` dies
//! (default 48, seeded from `--start-seed`, 0 → 42) are simulated through
//! the fleet's cached-signature replay path *and* as standalone gate-level
//! sessions, and the per-die verdicts must match exactly.

use std::process::ExitCode;

use soctest_conformance::pairs::{
    comb_divergence, divergence_vcd, run_all_pairs, sim_comb_netlist, PAIR_NAMES,
};
use soctest_conformance::report::{
    active_gates, dump_netlist, minimize, parse_netlist, render_html_report, render_report,
    Mismatch,
};
use soctest_conformance::selftest::{kernel_mutation_self_test, mutation_self_test};

struct Args {
    seeds: u64,
    max_gates: usize,
    start_seed: u64,
    self_test: bool,
    replay: Option<String>,
    out: String,
    vcd_on_failure: bool,
    report_on_failure: bool,
    fleet: bool,
    fleet_dies: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 25,
        max_gates: 120,
        start_seed: 0,
        self_test: false,
        replay: None,
        out: "difftest_report.json".into(),
        vcd_on_failure: false,
        report_on_failure: false,
        fleet: false,
        fleet_dies: 48,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--max-gates" => {
                args.max_gates = value("--max-gates")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--start-seed" => {
                args.start_seed = value("--start-seed")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--self-test" => args.self_test = true,
            "--fleet" => args.fleet = true,
            "--fleet-dies" => {
                args.fleet_dies = value("--fleet-dies")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--vcd-on-failure" => args.vcd_on_failure = true,
            "--report-on-failure" => args.report_on_failure = true,
            "--replay" => args.replay = Some(value("--replay")?),
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn self_test_mode(args: &Args) -> ExitCode {
    let mut missed = 0u64;
    for seed in args.start_seed..args.start_seed + args.seeds {
        for (harness, outcome) in [
            ("sim", mutation_self_test(seed, args.max_gates)),
            ("kernel", kernel_mutation_self_test(seed, args.max_gates)),
        ] {
            if !outcome.detected {
                missed += 1;
                eprintln!(
                    "MISSED ({harness}) seed {seed}: {:?}→{:?} at net {}",
                    outcome.original, outcome.mutated, outcome.site.0
                );
            }
        }
    }
    println!(
        "{{\"mode\": \"self-test\", \"seeds\": {}, \"missed\": {missed}}}",
        args.seeds
    );
    if missed == 0 {
        println!(
            "self-test: {}/{} injected mutations detected (sim + kernel harnesses)",
            args.seeds * 2,
            args.seeds * 2
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_mode(file: &str) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nl = match parse_netlist(&text) {
        Ok(nl) => nl,
        Err(e) => {
            eprintln!("replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replay: {} gates ({} active), {} in / {} out",
        nl.len(),
        active_gates(&nl),
        nl.input_width(),
        nl.output_width()
    );
    match comb_divergence(&nl, &nl, 0) {
        Some(d) => {
            println!("replay: STILL FAILING: {d}");
            ExitCode::FAILURE
        }
        None => {
            println!("replay: netlist is clean against the reference");
            ExitCode::SUCCESS
        }
    }
}

fn fleet_mode(args: &Args) -> ExitCode {
    let seed = if args.start_seed == 0 {
        42
    } else {
        args.start_seed
    };
    let outcome = match soctest_conformance::fleet_difftest(args.fleet_dies, seed) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleet: cache build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let classes: Vec<String> = outcome
        .class_counts
        .iter()
        .map(|(c, n)| format!("\"{c}\": {n}"))
        .collect();
    println!(
        "{{\"mode\": \"fleet\", \"dies\": {}, \"seed\": {seed}, \"classes\": {{{}}}, \"mismatches\": {}}}",
        outcome.dies,
        classes.join(", "),
        outcome.mismatches.len()
    );
    for m in &outcome.mismatches {
        eprintln!(
            "fleet MISMATCH die {}: {} → fleet {:?} vs standalone {:?}",
            m.die, m.profile, m.fleet, m.standalone
        );
    }
    if outcome.mismatches.is_empty() {
        println!(
            "fleet: {} dies replayed standalone, verdicts identical",
            outcome.dies
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fuzz_mode(args: &Args) -> ExitCode {
    let mut mismatches: Vec<Mismatch> = Vec::new();
    for seed in args.start_seed..args.start_seed + args.seeds {
        mismatches.extend(run_all_pairs(seed, args.max_gates));
    }
    let checked: Vec<(&'static str, u64)> = PAIR_NAMES.iter().map(|&p| (p, args.seeds)).collect();

    // Minimize the first sim-pair failure into a replayable dump. The
    // predicate is "simulator and reference still disagree on the reduced
    // netlist", so the dump replays standalone.
    let mut dump_file = None;
    if let Some(m) = mismatches.iter().find(|m| m.pair == "sim") {
        let nl = sim_comb_netlist(m.seed, args.max_gates);
        if comb_divergence(&nl, &nl, m.seed).is_some() {
            let min = minimize(&nl, |cand| comb_divergence(cand, cand, m.seed).is_some());
            let file = format!("difftest_min_seed{}.nl", m.seed);
            if std::fs::write(&file, dump_netlist(&min)).is_ok() {
                println!(
                    "minimized seed {} netlist to {} active gates → {file}",
                    m.seed,
                    active_gates(&min)
                );
                dump_file = Some(file);
            }
            if args.vcd_on_failure {
                let wave = format!("difftest_seed{}.vcd", m.seed);
                if std::fs::write(&wave, divergence_vcd(&min, m.seed)).is_ok() {
                    println!("replayed probe stimulus on the minimized netlist → {wave}");
                }
            }
        }
    }

    let report = render_report(
        args.seeds,
        args.max_gates,
        &checked,
        &mismatches,
        dump_file.as_deref(),
    );
    if std::fs::write(&args.out, &report).is_err() {
        eprintln!("cannot write {}", args.out);
    }
    print!("{report}");

    if args.report_on_failure && !mismatches.is_empty() {
        let html = render_html_report(
            args.seeds,
            args.max_gates,
            &mismatches,
            dump_file.as_deref(),
        );
        let path = format!("{}.html", args.out.trim_end_matches(".json"));
        if std::fs::write(&path, &html).is_ok() {
            println!("wrote HTML triage report → {path}");
        } else {
            eprintln!("cannot write {path}");
        }
    }
    if mismatches.is_empty() {
        println!(
            "difftest: {} seeds × {} pairs, zero mismatches",
            args.seeds,
            PAIR_NAMES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("difftest: {} mismatches", mismatches.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("difftest: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(file) = &args.replay {
        return replay_mode(file);
    }
    if args.self_test {
        return self_test_mode(&args);
    }
    if args.fleet {
        return fleet_mode(&args);
    }
    fuzz_mode(&args)
}
