//! Error type for the BIST engine layer.

use std::error::Error;
use std::fmt;

/// Errors raised by the BIST engine and its pattern-generation resources.
///
/// This is the innermost layer of the session error lattice:
/// `EngineError` → `soctest_p1500::ProtocolError` → `soctest_core`'s
/// `SessionError`, with `From` conversions at each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The requested ALFSR width is outside the primitive-polynomial table.
    UnsupportedWidth {
        /// The rejected width.
        width: usize,
    },
    /// The requested polynomial variant does not exist for this width.
    UnsupportedVariant {
        /// The ALFSR width.
        width: usize,
        /// The rejected variant index.
        variant: u8,
    },
    /// The engine never raised `end_test` within its cycle budget.
    Hung {
        /// Functional cycles spent before the watchdog expired.
        cycles: u64,
    },
    /// A response row did not match the declared module output width.
    ResponseArity {
        /// The declared width (or module count).
        expected: usize,
        /// The width (or count) actually supplied.
        got: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsupportedWidth { width } => {
                write!(f, "no primitive polynomial for ALFSR width {width}")
            }
            EngineError::UnsupportedVariant { width, variant } => {
                write!(f, "no polynomial variant {variant} for ALFSR width {width}")
            }
            EngineError::Hung { cycles } => {
                write!(f, "engine never raised end_test within {cycles} cycles")
            }
            EngineError::ResponseArity { expected, got } => {
                write!(f, "response arity mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = EngineError::Hung { cycles: 42 };
        let msg = e.to_string();
        assert!(msg.contains("42"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
