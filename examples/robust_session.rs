//! A fault-tolerant test session on a defective device: one of the three
//! LDPC decoder modules carries a stuck-at defect, and the robust session
//! runner detects it, retries up the polynomial/seed ladder to rule out
//! aliasing, and quarantines exactly the bad module — while a hung engine
//! and an over-budget session surface as typed errors.
//!
//! ```text
//! cargo run --release --example robust_session
//! ```

use soctest::core::casestudy::CaseStudy;
use soctest::core::robust::{RobustSession, SessionBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = CaseStudy::paper()?;
    let patterns = 256u64;

    // A healthy device: every module passes on the first attempt.
    let healthy = CaseStudy::paper()?;
    let report = RobustSession::default().run(&reference, &healthy, patterns)?;
    println!("healthy device:");
    for outcome in &report.outcomes {
        println!(
            "  {:<13} {} ({} attempt{})",
            outcome.module,
            if outcome.quarantined {
                "QUARANTINED"
            } else {
                "pass"
            },
            outcome.attempts.len(),
            if outcome.attempts.len() == 1 { "" } else { "s" },
        );
    }
    println!(
        "  bill: {} TCK, {} at-speed cycles\n",
        report.tck_spent, report.functional_cycles
    );

    // A defective device: CHECK_NODE's first output is stuck at 0.
    let mut defective = CaseStudy::paper()?;
    let victim = defective.modules()[1].primary_outputs()[0];
    defective.module_mut(1).force_constant(victim, false);
    let report = RobustSession::default().run(&reference, &defective, patterns)?;
    println!("defective device (CHECK_NODE output stuck at 0):");
    for outcome in &report.outcomes {
        println!(
            "  {:<13} {}",
            outcome.module,
            if outcome.quarantined {
                "QUARANTINED"
            } else {
                "pass"
            }
        );
        for a in &outcome.attempts {
            println!(
                "    {:?}: dut {:#06x} vs golden {:#06x} → {}",
                a.strategy,
                a.signature,
                a.golden,
                if a.matched() { "match" } else { "MISMATCH" }
            );
        }
    }
    assert_eq!(report.quarantined(), vec!["CHECK_NODE"]);

    // A session that cannot fit its TCK budget aborts with accounting.
    let strict = RobustSession::new(SessionBudget {
        max_tck: 100,
        ..SessionBudget::default()
    });
    match strict.run(&reference, &healthy, patterns) {
        Err(e) => println!("\nover-budget session: {e}"),
        Ok(_) => unreachable!("100 TCK cannot cover a full session"),
    }

    // A hung engine (zero patterns: the control unit ignores Start) is a
    // typed error, not an endless poll.
    match RobustSession::default().run(&reference, &healthy, 0) {
        Err(e) => println!("hung engine: {e}"),
        Ok(_) => unreachable!("a zero-pattern session never finishes"),
    }
    Ok(())
}
