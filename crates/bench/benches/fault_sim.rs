//! Throughput of the parallel-fault sequential fault simulator — the
//! workhorse behind every Table 3 row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctest_core::casestudy::CaseStudy;
use soctest_fault::{FaultUniverse, SeqFaultSim, SeqFaultSimConfig};

fn bench_fault_sim(c: &mut Criterion) {
    let case = CaseStudy::paper().unwrap();
    let pgen = case.pattern_generator();
    let mut group = c.benchmark_group("seq_fault_sim");
    group.sample_size(10);
    for (m, name) in [(0usize, "bit_node"), (2, "control_unit")] {
        let universe = FaultUniverse::stuck_at(&case.modules()[m]);
        group.bench_function(BenchmarkId::new("saf_256", name), |b| {
            b.iter(|| {
                let mut stim = pgen.stimulus(m, 256);
                SeqFaultSim::new(&universe, SeqFaultSimConfig::default())
                    .run(&mut stim)
                    .unwrap()
                    .detected_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
