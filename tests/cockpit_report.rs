//! Acceptance pins for the campaign cockpit (DESIGN.md §11): the report
//! is one self-contained document, its coverage figures are the
//! simulator's figures to the bit, and the feedback advisor names the
//! module carrying a planted defect.

use soctest::core::casestudy::CaseStudy;
use soctest::core::cockpit::{render_report, run_campaign};
use soctest::core::experiments::Budget;
use soctest::obs::analyze::strategy;
use soctest::obs::report::is_self_contained;

fn quick_budget() -> Budget {
    let mut b = Budget::quick();
    b.bist_patterns = 64;
    b.diag_patterns = 32;
    b
}

#[test]
fn cockpit_closes_the_papers_feedback_loop() {
    let reference = CaseStudy::small().expect("case study builds");
    let mut dut = CaseStudy::small().expect("case study builds");
    let victim = dut.modules()[2].primary_outputs()[0];
    dut.module_mut(2).force_constant(victim, true);

    let data = run_campaign(&reference, &dut, &quick_budget()).expect("campaign runs");

    // Curve endpoints are the simulator's coverage figures, bit-for-bit.
    assert_eq!(data.curves.len(), 6, "3 modules × SAF/TDF");
    for c in &data.curves {
        assert_eq!(
            c.curve.final_percent().to_bits(),
            c.coverage_percent.to_bits(),
            "{} {} endpoint drifted",
            c.module,
            c.model
        );
    }

    // The planted CONTROL_UNIT defect quarantines, and the advisor turns
    // that into a named module-strategy suggestion.
    assert_eq!(data.session.quarantined(), vec!["CONTROL_UNIT"]);
    assert!(data.advice.iter().any(
        |a| a.module == "CONTROL_UNIT" && a.strategy == strategy::REDESIGN_CONSTRAINT_GENERATOR
    ));

    // One self-contained document carrying every module scope, the
    // machine-checkable coverage cells, and the trace-derived timeline.
    let html = render_report(&data);
    assert!(is_self_contained(&html));
    for m in ["BIT_NODE", "CHECK_NODE", "CONTROL_UNIT"] {
        assert!(html.contains(m), "missing module {m}");
    }
    for c in &data.curves {
        assert!(html.contains(&format!(
            "data-module=\"{}\" data-model=\"{}\">{:.1}%",
            c.module, c.model, c.coverage_percent
        )));
    }
    assert!(html.contains("SessionStart") && html.contains("Quarantine"));
}
