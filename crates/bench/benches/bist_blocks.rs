//! Microbenchmarks of the BIST building blocks (behavioral and
//! structural), plus an ablation over MISR width.

use soctest_bench::micro::bench;
use soctest_bist::{structural, Alfsr, Misr};
use soctest_netlist::Netlist;
use soctest_sim::SeqSim;

fn main() {
    bench("alfsr20_step_4096", || {
        let mut a = Alfsr::new(20).unwrap();
        let mut acc = 0u64;
        for _ in 0..4096 {
            acc ^= a.step();
        }
        acc
    });
    // Ablation: MISR width (aliasing head-room costs nothing in time).
    for width in [8usize, 16, 32] {
        bench(&format!("misr_absorb_4096/{width}"), || {
            let mut m = Misr::new(width);
            for i in 0..4096u64 {
                m.absorb(i.wrapping_mul(0x9E37_79B9));
            }
            m.signature()
        });
    }
    // Structural ALFSR, gate-level simulation cost.
    let nl: Netlist = structural::alfsr(20).unwrap();
    bench("structural_alfsr20_sim_256", || {
        let mut sim = SeqSim::new(&nl).unwrap();
        sim.drive_port("en", 1);
        for _ in 0..256 {
            sim.step();
        }
        sim.read_port_lane("q", 0)
    });
}
