//! The case-study core: a reconfigurable serial LDPC decoder.
//!
//! The paper wraps a "Reconfigurable Serial Low-Density Parity-Checker
//! decoder" [Masera & Quaglio, 15] with its BIST/P1500 architecture. The
//! original RTL is proprietary, so this crate rebuilds the core from its
//! published description:
//!
//! * [`code`] — parity-check matrices (Gallager-style regular and random
//!   irregular constructions), the bipartite graph view (Fig. 6), and a
//!   systematic GF(2) encoder;
//! * [`channel`] — BSC and quantized-AWGN channels producing the LLRs the
//!   decoder consumes, plus BER bookkeeping;
//! * [`decoder`] — the behavioral serial min-sum decoder: one configurable
//!   `BIT_NODE`, one configurable `CHECK_NODE`, a `CONTROL_UNIT`, and two
//!   interleaving memories emulating the graph edges (up to 512 check
//!   nodes and 1,024 bit nodes, as in the paper), instrumented with
//!   statement counters for the paper's step-1 evaluation loop (Fig. 3);
//! * [`gatelevel`] — gate-level generators for the three modules with the
//!   exact Table 1 port budgets (BIT_NODE 54/55, CHECK_NODE 53/53,
//!   CONTROL_UNIT 45/44) and flip-flop counts in the ballpark of the
//!   paper's scan-cell counts (75 / 803 / 42).
//!
//! # Example: decode over a noisy channel
//!
//! ```
//! use soctest_ldpc::code::LdpcCode;
//! use soctest_ldpc::channel::Bsc;
//! use soctest_ldpc::decoder::{SerialDecoder, DecoderConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = LdpcCode::gallager(96, 3, 6, 7)?;
//! let mut dec = SerialDecoder::new(&code, DecoderConfig::default());
//! let channel = Bsc::new(0.02, 11);
//! let tx = vec![false; code.n()]; // all-zero codeword
//! let llrs = channel.transmit(&tx);
//! let out = dec.decode(&llrs, 20);
//! assert!(out.success);
//! assert_eq!(out.bits, tx);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod code;
pub mod decoder;
pub mod gatelevel;
