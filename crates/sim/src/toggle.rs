//! Toggle-activity collection (the step-1 metric of the paper's Fig. 3).

use soctest_netlist::{NetId, Netlist};

/// Accumulates per-net activity while a simulation runs.
///
/// After sampling, [`ToggleMonitor::report`] gives the *toggle activity*:
/// the percentage of nets that were observed at both logic values — the
/// RTL-level confidence metric the paper pairs with statement coverage in
/// its first evaluation step.
///
/// When a run drives fewer than 64 lanes, restrict observation with
/// [`ToggleMonitor::with_lane_mask`] (as [`crate::VcdProbe`] selects its
/// lane): lanes that carry no stimulus hold their inputs at 0, so an
/// unmasked monitor spuriously records 0-observations — and transition
/// counts wherever idle-lane state still evolves — for nets the test
/// never actually exercised.
#[derive(Debug, Clone)]
pub struct ToggleMonitor {
    seen0: Vec<bool>,
    seen1: Vec<bool>,
    transitions: Vec<u64>,
    prev: Vec<u64>,
    samples: u64,
    lane_mask: u64,
}

impl ToggleMonitor {
    /// Creates a monitor sized for `netlist`, observing all 64 lanes.
    pub fn new(netlist: &Netlist) -> Self {
        ToggleMonitor::with_lane_mask(netlist, u64::MAX)
    }

    /// Creates a monitor observing only the lanes set in `mask` — use
    /// `(1 << n) - 1` when a run drives `n` lanes so idle lanes cannot
    /// pollute `seen0` or the transition counts.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is zero (a monitor that observes nothing).
    pub fn with_lane_mask(netlist: &Netlist, mask: u64) -> Self {
        assert!(mask != 0, "lane mask must select at least one lane");
        let n = netlist.len();
        ToggleMonitor {
            seen0: vec![false; n],
            seen1: vec![false; n],
            transitions: vec![0; n],
            prev: vec![0; n],
            samples: 0,
            lane_mask: mask,
        }
    }

    /// The active lane mask.
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// Samples the full value buffer of a simulator after an evaluation.
    ///
    /// `values[net]` is the 64-lane word of each net; the masked-in lanes
    /// contribute to 0/1 observation, and their lane-wise flips against
    /// the previous sample contribute to the transition counts.
    pub fn sample(&mut self, values: &[u64]) {
        let mask = self.lane_mask;
        for (i, &w) in values.iter().enumerate() {
            if w & mask != 0 {
                self.seen1[i] = true;
            }
            if !w & mask != 0 {
                self.seen0[i] = true;
            }
            if self.samples > 0 {
                self.transitions[i] += ((w ^ self.prev[i]) & mask).count_ones() as u64;
            }
            self.prev[i] = w;
        }
        self.samples += 1;
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether a given net toggled (saw both values).
    pub fn toggled(&self, net: NetId) -> bool {
        self.seen0[net.index()] && self.seen1[net.index()]
    }

    /// Lane-wise transitions observed on a given net.
    pub fn transition_count(&self, net: NetId) -> u64 {
        self.transitions[net.index()]
    }

    /// Produces the aggregate report.
    pub fn report(&self) -> ToggleReport {
        let total = self.seen0.len();
        let toggled = (0..total)
            .filter(|&i| self.seen0[i] && self.seen1[i])
            .count();
        let stuck_at_0 = (0..total)
            .filter(|&i| self.seen0[i] && !self.seen1[i])
            .count();
        let stuck_at_1 = (0..total)
            .filter(|&i| !self.seen0[i] && self.seen1[i])
            .count();
        let transitions = self.transitions.iter().sum();
        ToggleReport {
            nets: total,
            toggled,
            never_high: stuck_at_0,
            never_low: stuck_at_1,
            transitions,
            samples: self.samples,
        }
    }

    /// Nets that never toggled, for designer feedback (paper §3.2: "redefine
    /// the Constraints Generator" when activity is too low).
    pub fn untoggled_nets(&self) -> Vec<NetId> {
        (0..self.seen0.len())
            .filter(|&i| !(self.seen0[i] && self.seen1[i]))
            .map(|i| NetId(i as u32))
            .collect()
    }

    /// Cold nets with the level they were stuck at: `(net, stuck_high)` —
    /// `true` when the net was only ever seen at 1, `false` when only at 0
    /// (or never observed at all). This is the signal a weighted-random
    /// constraint generator needs: a stuck-low net wants a *higher*
    /// 1-probability on the inputs of its cone, a stuck-high net a lower
    /// one.
    pub fn cold_polarity(&self) -> Vec<(NetId, bool)> {
        (0..self.seen0.len())
            .filter(|&i| !(self.seen0[i] && self.seen1[i]))
            .map(|i| (NetId(i as u32), self.seen1[i]))
            .collect()
    }
}

/// Aggregate toggle-activity numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleReport {
    /// Total nets observed.
    pub nets: usize,
    /// Nets seen at both 0 and 1.
    pub toggled: usize,
    /// Nets only ever seen at 0.
    pub never_high: usize,
    /// Nets only ever seen at 1.
    pub never_low: usize,
    /// Total lane-wise value changes across all samples.
    pub transitions: u64,
    /// Number of samples contributing.
    pub samples: u64,
}

impl ToggleReport {
    /// Toggle activity as a percentage of all nets.
    pub fn activity_percent(&self) -> f64 {
        if self.nets == 0 {
            return 0.0;
        }
        100.0 * self.toggled as f64 / self.nets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqSim;
    use soctest_netlist::ModuleBuilder;

    #[test]
    fn counter_eventually_toggles_low_bits() {
        let mut mb = ModuleBuilder::new("cnt");
        let en = mb.input("en");
        let clr = mb.input("clr");
        let q = mb.counter(4, en, clr);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();

        let mut sim = SeqSim::new(&nl).unwrap();
        let mut mon = ToggleMonitor::new(&nl);
        sim.drive_port("en", 1);
        sim.drive_port("clr", 0);
        for _ in 0..20 {
            sim.eval_comb();
            mon.sample(sim.comb().values());
            sim.clock();
        }
        let q0 = nl.port("q").unwrap().bits()[0];
        let q3 = nl.port("q").unwrap().bits()[3];
        assert!(mon.toggled(q0));
        assert!(mon.toggled(q3), "bit 3 toggles at count 8..16");
        let rep = mon.report();
        assert!(rep.activity_percent() > 50.0);
        assert_eq!(rep.samples, 20);
        assert!(mon.transition_count(q0) > 0);
    }

    #[test]
    fn idle_circuit_reports_low_activity() {
        let mut mb = ModuleBuilder::new("idle");
        let a = mb.input("a");
        let q = mb.register(&[a]);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();
        let mut sim = SeqSim::new(&nl).unwrap();
        let mut mon = ToggleMonitor::new(&nl);
        sim.set_input_bit(nl.port("a").unwrap().bits()[0], false);
        for _ in 0..4 {
            sim.eval_comb();
            mon.sample(sim.comb().values());
            sim.clock();
        }
        let rep = mon.report();
        assert_eq!(rep.toggled, 0);
        assert!(!mon.untoggled_nets().is_empty());
        // Every cold net here is stuck low — the polarity signal agrees.
        let cold = mon.cold_polarity();
        assert_eq!(cold.len(), mon.untoggled_nets().len());
        assert!(cold.iter().all(|&(_, stuck_high)| !stuck_high));
    }

    #[test]
    fn three_lane_run_with_mask_ignores_idle_lanes() {
        // A register fed by one input: drive lanes 0..3 with all-ones, so
        // every driven lane only ever sees 1 after the first clock.
        let mut mb = ModuleBuilder::new("m3");
        let a = mb.input("a");
        let q = mb.register(&[a]);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();
        let a_net = nl.port("a").unwrap().bits()[0];
        let lanes = 0b111u64;

        let run = |mon: &mut ToggleMonitor| {
            let mut sim = SeqSim::new(&nl).unwrap();
            sim.set_input(a_net, lanes);
            for _ in 0..6 {
                sim.eval_comb();
                mon.sample(sim.comb().values());
                sim.clock();
            }
        };

        // Unmasked monitor: the 61 idle lanes hold `a` at 0, so `a`
        // spuriously counts as having seen both levels.
        let mut polluted = ToggleMonitor::new(&nl);
        run(&mut polluted);
        assert!(polluted.toggled(a_net), "unmasked monitor is polluted");

        // Masked monitor: `a` is constant 1 on every driven lane — it must
        // not count as toggled, and must contribute no transitions.
        let mut masked = ToggleMonitor::with_lane_mask(&nl, lanes);
        run(&mut masked);
        assert_eq!(masked.lane_mask(), lanes);
        assert!(!masked.toggled(a_net), "masked monitor sees constant 1");
        assert_eq!(masked.transition_count(a_net), 0);
        // The register output does transition once (0 → 1 after the first
        // clock) on each of the 3 driven lanes.
        let q_net = nl.port("q").unwrap().bits()[0];
        assert!(masked.toggled(q_net));
        assert_eq!(masked.transition_count(q_net), 3);
        // And the masked report counts strictly fewer transitions than the
        // polluted one (which also saw the q-flip on... nothing else, but
        // a's idle-lane XOR noise is the regression this pins).
        assert!(masked.report().transitions <= polluted.report().transitions);
    }

    #[test]
    #[should_panic(expected = "lane mask")]
    fn zero_mask_is_rejected() {
        let mut mb = ModuleBuilder::new("z");
        let a = mb.input("a");
        mb.output_bus("q", &[a]);
        let nl = mb.finish().unwrap();
        let _ = ToggleMonitor::with_lane_mask(&nl, 0);
    }
}
