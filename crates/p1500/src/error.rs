//! Error type for the TAP/P1500 protocol layer.

use std::error::Error;
use std::fmt;

use soctest_bist::EngineError;
use soctest_obs::MetricsRegistry;

/// Cycle accounting returned by a successful
/// [`crate::TapDriver::wait_for_done`] poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitStats {
    /// Functional cycles spent in at-speed bursts before `end_test` rose.
    pub cycles_waited: u64,
    /// Bursts issued before `end_test` rose.
    pub bursts: u32,
}

impl WaitStats {
    /// Folds this wait's accounting into the unified metrics registry.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        registry.inc("wait_functional_cycles_total", self.cycles_waited);
        registry.inc("wait_bursts_total", self.bursts.into());
        registry.observe("wait_cycles_per_poll", self.cycles_waited);
    }
}

/// Errors raised while driving the TAP/P1500 protocol.
///
/// Middle layer of the session error lattice: wraps
/// [`soctest_bist::EngineError`] and is in turn wrapped by
/// `soctest_core`'s `SessionError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The status register never reported `end_test` within the polling
    /// budget.
    DoneTimeout {
        /// Functional cycles burst before giving up.
        cycles_waited: u64,
        /// Bursts issued before giving up.
        bursts: u32,
    },
    /// A wrapper-instruction readback did not return the code shifted in
    /// (TDI/TDO corruption on the WIR scan path).
    WirReadbackMismatch {
        /// The instruction code that was shifted in.
        expected: u8,
        /// The code read back out.
        got: u8,
    },
    /// Repeated status reads never agreed on a majority value.
    NoStatusMajority {
        /// Number of reads taken.
        votes: u32,
    },
    /// An engine-layer failure observed through the protocol.
    Engine(EngineError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::DoneTimeout {
                cycles_waited,
                bursts,
            } => write!(
                f,
                "end_test never rose after {cycles_waited} functional cycles in {bursts} bursts"
            ),
            ProtocolError::WirReadbackMismatch { expected, got } => write!(
                f,
                "WIR readback mismatch: shifted {expected:#05b}, read back {got:#05b}"
            ),
            ProtocolError::NoStatusMajority { votes } => {
                write!(f, "no majority among {votes} status reads")
            }
            ProtocolError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ProtocolError {
    fn from(e: EngineError) -> Self {
        ProtocolError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ProtocolError::DoneTimeout {
            cycles_waited: 640,
            bursts: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("640"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn engine_errors_convert_and_chain() {
        let e: ProtocolError = EngineError::Hung { cycles: 7 }.into();
        assert_eq!(e, ProtocolError::Engine(EngineError::Hung { cycles: 7 }));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
