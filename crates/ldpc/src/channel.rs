//! Channels producing quantized LLRs, and BER bookkeeping.

use soctest_prng::SplitMix64;

/// Saturation bound of the decoder's LLR quantization (sign + 7 bits of
/// magnitude, matching the 8-bit message datapath of the gate-level
/// modules).
pub const LLR_MAX: i32 = 127;

/// A binary symmetric channel: each transmitted bit flips with probability
/// `p`; received values are mapped to ±LLR of fixed reliability.
#[derive(Debug, Clone)]
pub struct Bsc {
    p: f64,
    seed: u64,
}

impl Bsc {
    /// A BSC with crossover probability `p` (0..0.5) and a noise seed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 0.5)`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..0.5).contains(&p), "crossover probability in [0, 0.5)");
        Bsc { p, seed }
    }

    /// The channel LLR magnitude `ln((1-p)/p)`, scaled into the quantized
    /// range.
    pub fn llr_magnitude(&self) -> i32 {
        if self.p == 0.0 {
            return LLR_MAX;
        }
        let lr = ((1.0 - self.p) / self.p).ln();
        ((lr * 8.0).round() as i32).clamp(1, LLR_MAX)
    }

    /// Transmits a codeword; returns per-bit LLRs (positive = likely 0).
    pub fn transmit(&self, bits: &[bool]) -> Vec<i32> {
        let mut rng = SplitMix64::new(self.seed);
        let mag = self.llr_magnitude();
        bits.iter()
            .map(|&b| {
                let flipped = rng.gen_bool(self.p);
                let received = b ^ flipped;
                if received {
                    -mag
                } else {
                    mag
                }
            })
            .collect()
    }
}

/// A quantized binary-input AWGN channel (BPSK, LLR = 2y/σ²).
#[derive(Debug, Clone)]
pub struct QuantizedAwgn {
    snr_db: f64,
    seed: u64,
}

impl QuantizedAwgn {
    /// A channel at the given Eb/N0 (dB) for a rate-`rate` code.
    pub fn new(snr_db: f64, seed: u64) -> Self {
        QuantizedAwgn { snr_db, seed }
    }

    /// Transmits a codeword at code rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn transmit(&self, bits: &[bool], rate: f64) -> Vec<i32> {
        assert!(rate > 0.0 && rate <= 1.0, "code rate in (0,1]");
        let ebn0 = 10f64.powf(self.snr_db / 10.0);
        let sigma2 = 1.0 / (2.0 * rate * ebn0);
        let sigma = sigma2.sqrt();
        let mut rng = SplitMix64::new(self.seed);
        bits.iter()
            .map(|&b| {
                let x = if b { -1.0 } else { 1.0 };
                let y = x + sigma * rng.gen_gaussian();
                let llr = 2.0 * y / sigma2;
                ((llr * 4.0).round() as i32).clamp(-LLR_MAX, LLR_MAX)
            })
            .collect()
    }
}

/// Bit-error-rate bookkeeping across decode attempts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerCounter {
    /// Bits compared.
    pub bits: u64,
    /// Bit errors after decoding.
    pub bit_errors: u64,
    /// Codewords compared.
    pub words: u64,
    /// Codewords with at least one residual error.
    pub word_errors: u64,
}

impl BerCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decoded word against the transmitted word.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn record(&mut self, tx: &[bool], rx: &[bool]) {
        assert_eq!(tx.len(), rx.len(), "word lengths");
        let errs = tx.iter().zip(rx).filter(|(a, b)| a != b).count() as u64;
        self.bits += tx.len() as u64;
        self.bit_errors += errs;
        self.words += 1;
        if errs > 0 {
            self.word_errors += 1;
        }
    }

    /// Bit error rate.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Word (frame) error rate.
    pub fn wer(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.word_errors as f64 / self.words as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsc_flips_roughly_p_bits() {
        let ch = Bsc::new(0.1, 42);
        let tx = vec![false; 10_000];
        let llrs = ch.transmit(&tx);
        let flips = llrs.iter().filter(|&&l| l < 0).count();
        assert!((800..1200).contains(&flips), "got {flips} flips");
    }

    #[test]
    fn clean_channel_never_flips() {
        let ch = Bsc::new(0.0, 1);
        let tx = vec![true; 100];
        assert!(ch.transmit(&tx).iter().all(|&l| l == -LLR_MAX));
    }

    #[test]
    fn awgn_llr_sign_tracks_bits_at_high_snr() {
        let ch = QuantizedAwgn::new(12.0, 7);
        let tx: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let llrs = ch.transmit(&tx, 0.5);
        let agree = tx.iter().zip(&llrs).filter(|(&b, &l)| (l < 0) == b).count();
        assert!(agree > 195, "high SNR should rarely flip: {agree}/200");
    }

    #[test]
    fn ber_counter_math() {
        let mut c = BerCounter::new();
        c.record(&[false, true, false], &[false, false, false]);
        c.record(&[true, true, true], &[true, true, true]);
        assert_eq!(c.bit_errors, 1);
        assert_eq!(c.word_errors, 1);
        assert!((c.ber() - 1.0 / 6.0).abs() < 1e-12);
        assert!((c.wer() - 0.5).abs() < 1e-12);
    }
}
