//! Multiple-input signature registers and the XOR cascade.

/// Folds an arbitrary-width response word down to `width` bits by XOR
/// cascading (bit *i* of the result is the XOR of all input bits whose
/// index is congruent to *i* modulo `width`).
///
/// This is the paper's "xor cascade" in front of each MISR: module output
/// ports are wider than the 16-bit signature registers, so responses are
/// compacted space-wise before time-wise compaction in the MISR. The same
/// folding is used by the fault simulator's MISR observation mode, so
/// behavioral, structural, and fault-sim views all agree.
pub fn fold_xor(bits: &[bool], width: usize) -> u64 {
    assert!((1..=64).contains(&width), "fold width 1..=64");
    let mut out = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out ^= 1u64 << (i % width);
        }
    }
    out
}

/// A multiple-input signature register.
///
/// Update rule (matching `soctest-fault`'s MISR observation mode): with
/// feedback `fb` = the last stage, stage `j` becomes
/// `state[j-1] ⊕ (taps_j · fb) ⊕ in[j]` (stage 0 uses no predecessor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: usize,
    taps: u64,
    state: u64,
}

impl Misr {
    /// The workspace's default tap set for a given width (bit 0 always
    /// fed back). Kept identical to
    /// `soctest_fault::ObserveMode::misr_default`.
    pub fn default_taps(width: usize) -> u64 {
        // `1u64 << 64` is a shift overflow, so width 64 takes the full mask
        // explicitly instead of computing `(1 << width) - 1`.
        let mask = match width {
            64.. => u64::MAX,
            w => (1u64 << w) - 1,
        };
        (0b101_1011u64 | 1) & mask.max(1)
    }

    /// A MISR of `width` bits (2..=64) with the default taps, state 0.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 2..=64.
    pub fn new(width: usize) -> Self {
        Self::with_taps(width, Self::default_taps(width))
    }

    /// A MISR with explicit taps.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 2..=64 or bit 0 of `taps` is clear.
    pub fn with_taps(width: usize, taps: u64) -> Self {
        assert!((2..=64).contains(&width), "MISR width 2..=64");
        assert!(taps & 1 == 1, "tap bit 0 must be set");
        Misr {
            width,
            taps,
            state: 0,
        }
    }

    /// Register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The tap mask.
    pub fn taps(&self) -> u64 {
        self.taps
    }

    /// Clears the signature.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Absorbs one response word (low `width` bits used).
    pub fn absorb(&mut self, input: u64) {
        let fb = (self.state >> (self.width - 1)) & 1;
        let mut next = (self.state << 1) & self.mask();
        if fb == 1 {
            next ^= self.taps;
        }
        next ^= input & self.mask();
        self.state = next;
    }

    /// Absorbs a wide response through the XOR cascade.
    pub fn absorb_folded(&mut self, bits: &[bool]) {
        let folded = fold_xor(bits, self.width);
        self.absorb(folded);
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_xor_reduces_modulo_width() {
        // bits 0 and 4 fold onto position 0 of a 4-bit fold: they cancel.
        let bits = [true, false, false, false, true, true];
        // positions: 0^4 -> bit0 twice (cancels), 5 -> bit1.
        assert_eq!(fold_xor(&bits, 4), 0b0010);
    }

    #[test]
    fn different_streams_give_different_signatures() {
        let mut a = Misr::new(16);
        let mut b = Misr::new(16);
        for i in 0..100u64 {
            a.absorb(i & 0xFFFF);
            b.absorb((i ^ 1) & 0xFFFF);
        }
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn identical_streams_agree() {
        let mut a = Misr::new(16);
        let mut b = Misr::new(16);
        for i in 0..50u64 {
            a.absorb(i * 7);
            b.absorb(i * 7);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn single_bit_error_always_changes_the_signature() {
        // A single injected error can never alias (aliasing needs ≥2
        // errors); check over a few positions and times.
        for flip_t in [3u64, 17, 63] {
            for flip_bit in [0u64, 7, 15] {
                let mut clean = Misr::new(16);
                let mut dirty = Misr::new(16);
                for t in 0..80u64 {
                    let w = (t.wrapping_mul(0x9E37)) & 0xFFFF;
                    clean.absorb(w);
                    let e = if t == flip_t { 1u64 << flip_bit } else { 0 };
                    dirty.absorb(w ^ e);
                }
                assert_ne!(clean.signature(), dirty.signature());
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut m = Misr::new(8);
        m.absorb(0xAB);
        m.reset();
        assert_eq!(m.signature(), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_bounds_are_enforced() {
        let _ = Misr::new(1);
    }

    #[test]
    fn width_64_is_not_degenerate() {
        // Regression: `(1u64 << 64) - 1` overflowed, collapsing the taps to
        // `1` (release) or panicking (debug). The full documented range
        // must yield the primitive-style tap set.
        let m = Misr::new(64);
        assert_eq!(m.taps(), 0b101_1011, "width 64 keeps the default taps");
        assert_eq!(Misr::default_taps(64), Misr::default_taps(63));
    }

    #[test]
    fn width_64_catches_single_flips() {
        for flip_t in [0u64, 9, 31] {
            for flip_bit in [0u64, 33, 63] {
                let mut clean = Misr::new(64);
                let mut dirty = Misr::new(64);
                for t in 0..40u64 {
                    let w = t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    clean.absorb(w);
                    let e = if t == flip_t { 1u64 << flip_bit } else { 0 };
                    dirty.absorb(w ^ e);
                }
                assert_ne!(clean.signature(), dirty.signature());
            }
        }
    }
}
