//! Streaming statistical process control: EWMA and CUSUM control charts
//! over per-batch proportion metrics (yield, recovery rate, …).
//!
//! The chart model is the production test floor's: a campaign's first
//! [`SpcConfig::baseline`] batches establish the **in-control baseline**
//! (a pooled event rate `p̂`), and every later batch is scored against
//! it with deterministic, seed-free arithmetic:
//!
//! - each batch's standard deviation is the *analytic* binomial
//!   `σᵢ = sqrt(p_eff·(1−p_eff)/nᵢ)`, not a sampled estimate — robust to
//!   short baselines, and `p_eff` is floored by [`SpcConfig::min_rate`]
//!   so a rare-event metric (a near-zero baseline rate) cannot produce a
//!   degenerate σ that turns one event into a 50σ excursion;
//! - an **EWMA chart** smooths the batch values with weight λ and
//!   signals when the smoothed value leaves
//!   `p̂ ± L·σᵢ·sqrt(λ/(2−λ))`;
//! - a two-sided **CUSUM chart** accumulates the standardized slack
//!   `max(0, C ± z − k)` and signals past decision interval `h` — the
//!   fast detector for small sustained shifts.
//!
//! A chart emits one [`SpcExcursion`] per *onset*: the batch where a
//! quiet chart first enters violation. While the violation persists no
//! further records are emitted; once every chart recovers (CUSUM resets
//! on signal, EWMA re-enters its limits) the chart re-arms. That keeps
//! the excursion ledger proportional to the number of process events,
//! not the number of out-of-control batches.
//!
//! Everything here is a pure function of the observation sequence —
//! no clocks, no RNG — so feeding batches in batch order makes the
//! chart state and every excursion byte-reproducible across runs and
//! worker counts.

use std::fmt::Write as _;

/// Control-chart tuning. The defaults are deliberately conservative
/// (L = 4, h = 5, k = 0.75): on in-control data the false-alarm rate
/// over a few hundred batches is negligible even with baseline
/// estimation error, while a 3× defect-rate step (≈ 2σ yield shift at
/// 50-die batches) still trips CUSUM within a handful of batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpcConfig {
    /// EWMA smoothing weight λ in (0, 1]; higher reacts faster.
    pub lambda: f64,
    /// EWMA control-limit width in asymptotic EWMA standard deviations.
    pub ewma_l: f64,
    /// CUSUM reference value (allowance) in batch standard deviations.
    pub cusum_k: f64,
    /// CUSUM decision interval in batch standard deviations.
    pub cusum_h: f64,
    /// Batches that form the frozen in-control baseline; no signals are
    /// possible while it accumulates.
    pub baseline: u64,
    /// Rate floor for the σ computation (see module docs).
    pub min_rate: f64,
}

impl Default for SpcConfig {
    fn default() -> Self {
        SpcConfig {
            lambda: 0.25,
            ewma_l: 4.0,
            cusum_k: 0.75,
            cusum_h: 5.0,
            baseline: 10,
            min_rate: 0.02,
        }
    }
}

/// Which way a metric moved when a chart signaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The metric rose above its in-control level.
    Up,
    /// The metric fell below its in-control level.
    Down,
}

impl Direction {
    /// The wire name (`up` / `down`).
    pub fn name(self) -> &'static str {
        match self {
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }
}

/// One batch's full chart state — the rendering row for control-chart
/// plots (value, EWMA trajectory, limits) and the evidence trail behind
/// an excursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpcPoint {
    /// Batch index.
    pub batch: u64,
    /// The batch's raw metric value (events / trials).
    pub value: f64,
    /// Trials (e.g. dies) behind the value.
    pub trials: u64,
    /// EWMA of the metric after this batch (baseline batches carry the
    /// running baseline mean).
    pub ewma: f64,
    /// Upper EWMA control limit at this batch's sample size.
    pub ucl: f64,
    /// Lower EWMA control limit at this batch's sample size.
    pub lcl: f64,
    /// The standardized deviation `z = (value − p̂)/σᵢ` (0 in baseline).
    pub z: f64,
    /// High-side CUSUM after this batch.
    pub cusum_hi: f64,
    /// Low-side CUSUM after this batch.
    pub cusum_lo: f64,
    /// `true` while the point is part of the frozen baseline window.
    pub in_baseline: bool,
    /// The onset signal this batch raised, if any.
    pub signal: Option<Direction>,
}

/// An excursion: the onset batch where a chart left statistical control.
#[derive(Debug, Clone, PartialEq)]
pub struct SpcExcursion {
    /// The metric's name (e.g. `yield`).
    pub metric: String,
    /// Onset batch index.
    pub batch: u64,
    /// Which way the metric moved.
    pub direction: Direction,
    /// Shift magnitude in batch standard deviations (`|z|` at onset).
    pub magnitude_sigma: f64,
    /// The batch's raw value at onset.
    pub value: f64,
    /// The frozen in-control mean.
    pub mean: f64,
    /// EWMA at onset.
    pub ewma: f64,
    /// The triggering CUSUM statistic at onset (0 for a pure EWMA trip).
    pub cusum: f64,
    /// Which chart(s) tripped: `ewma`, `cusum`, or `ewma+cusum`.
    pub chart: &'static str,
}

impl SpcExcursion {
    /// One deterministic JSON line for the excursion ledger.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"metric\": \"{}\", \"batch\": {}, \"direction\": \"{}\", \
             \"magnitude_sigma\": {:.4}, \"value\": {:.6}, \"mean\": {:.6}, \
             \"ewma\": {:.6}, \"cusum\": {:.4}, \"chart\": \"{}\"}}",
            self.metric,
            self.batch,
            self.direction.name(),
            self.magnitude_sigma,
            self.value,
            self.mean,
            self.ewma,
            self.cusum,
            self.chart,
        );
        s
    }
}

/// One streaming proportion-metric control chart (EWMA + CUSUM).
#[derive(Debug, Clone, PartialEq)]
pub struct SpcChart {
    name: String,
    cfg: SpcConfig,
    /// Pooled baseline accumulators.
    baseline_events: u64,
    baseline_trials: u64,
    /// Frozen in-control mean (valid once `frozen`).
    mean: f64,
    frozen: bool,
    ewma: f64,
    cusum_hi: f64,
    cusum_lo: f64,
    /// `true` while a violation persists (suppresses repeat onsets).
    in_violation: bool,
    batches: u64,
    points: Vec<SpcPoint>,
}

impl SpcChart {
    /// A fresh chart for metric `name` under `cfg`.
    pub fn new(name: &str, cfg: SpcConfig) -> Self {
        SpcChart {
            name: name.to_owned(),
            cfg,
            baseline_events: 0,
            baseline_trials: 0,
            mean: 0.0,
            frozen: false,
            ewma: 0.0,
            cusum_hi: 0.0,
            cusum_lo: 0.0,
            in_violation: false,
            batches: 0,
            points: Vec::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The frozen in-control mean (the pooled running mean before the
    /// baseline freezes).
    pub fn mean(&self) -> f64 {
        if self.frozen {
            self.mean
        } else if self.baseline_trials > 0 {
            self.baseline_events as f64 / self.baseline_trials as f64
        } else {
            0.0
        }
    }

    /// Batches observed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// `true` once the baseline window is complete and signals can fire.
    pub fn armed(&self) -> bool {
        self.frozen
    }

    /// Every batch's chart state, in batch order.
    pub fn points(&self) -> &[SpcPoint] {
        &self.points
    }

    /// The per-batch analytic standard deviation at sample size `trials`.
    fn sigma(&self, trials: u64) -> f64 {
        let p = self.mean.clamp(self.cfg.min_rate, 1.0 - self.cfg.min_rate);
        (p * (1.0 - p) / trials.max(1) as f64).sqrt()
    }

    /// Observes one batch (`events` successes out of `trials`) and
    /// returns the onset excursion this batch raised, if any.
    pub fn observe(&mut self, batch: u64, events: u64, trials: u64) -> Option<SpcExcursion> {
        self.batches += 1;
        let trials_n = trials.max(1);
        let value = events as f64 / trials_n as f64;

        if !self.frozen {
            // Baseline accumulation: pooled rate, no signalling.
            self.baseline_events += events;
            self.baseline_trials += trials;
            let running = self.mean();
            self.points.push(SpcPoint {
                batch,
                value,
                trials,
                ewma: running,
                ucl: 1.0,
                lcl: 0.0,
                z: 0.0,
                cusum_hi: 0.0,
                cusum_lo: 0.0,
                in_baseline: true,
                signal: None,
            });
            if self.batches >= self.cfg.baseline {
                self.mean = running;
                self.ewma = running;
                self.frozen = true;
            }
            return None;
        }

        let sigma = self.sigma(trials_n);
        let z = (value - self.mean) / sigma;
        self.ewma = self.cfg.lambda * value + (1.0 - self.cfg.lambda) * self.ewma;
        let sigma_ewma = sigma * (self.cfg.lambda / (2.0 - self.cfg.lambda)).sqrt();
        let ucl = self.mean + self.cfg.ewma_l * sigma_ewma;
        let lcl = self.mean - self.cfg.ewma_l * sigma_ewma;
        self.cusum_hi = (self.cusum_hi + z - self.cfg.cusum_k).max(0.0);
        self.cusum_lo = (self.cusum_lo - z - self.cfg.cusum_k).max(0.0);

        let ewma_up = self.ewma > ucl;
        let ewma_down = self.ewma < lcl;
        let cusum_up = self.cusum_hi > self.cfg.cusum_h;
        let cusum_down = self.cusum_lo > self.cfg.cusum_h;
        let violated = ewma_up || ewma_down || cusum_up || cusum_down;

        let mut excursion = None;
        let mut signal = None;
        if violated && !self.in_violation {
            // Onset: emit one excursion and latch the violation.
            let direction = if ewma_down || cusum_down {
                Direction::Down
            } else {
                Direction::Up
            };
            let chart = match (ewma_up || ewma_down, cusum_up || cusum_down) {
                (true, true) => "ewma+cusum",
                (true, false) => "ewma",
                _ => "cusum",
            };
            let cusum = if cusum_down {
                self.cusum_lo
            } else if cusum_up {
                self.cusum_hi
            } else {
                0.0
            };
            excursion = Some(SpcExcursion {
                metric: self.name.clone(),
                batch,
                direction,
                magnitude_sigma: z.abs(),
                value,
                mean: self.mean,
                ewma: self.ewma,
                cusum,
                chart,
            });
            signal = Some(direction);
            self.in_violation = true;
        } else if !violated {
            self.in_violation = false;
        }
        // A fired CUSUM resets, per standard practice, so a later second
        // shift is detected from a clean slate.
        if cusum_up {
            self.cusum_hi = 0.0;
        }
        if cusum_down {
            self.cusum_lo = 0.0;
        }

        self.points.push(SpcPoint {
            batch,
            value,
            trials,
            ewma: self.ewma,
            ucl,
            lcl,
            z,
            cusum_hi: self.cusum_hi,
            cusum_lo: self.cusum_lo,
            in_baseline: false,
            signal,
        });
        excursion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart(baseline: u64) -> SpcChart {
        SpcChart::new(
            "yield",
            SpcConfig {
                baseline,
                ..SpcConfig::default()
            },
        )
    }

    #[test]
    fn constant_sequence_never_signals() {
        let mut c = chart(5);
        for b in 0..200 {
            assert!(c.observe(b, 95, 100).is_none(), "batch {b} signalled");
        }
        assert!(c.armed());
        assert!((c.mean() - 0.95).abs() < 1e-12);
        assert_eq!(c.points().len(), 200);
        assert!(c.points().iter().all(|p| p.signal.is_none()));
    }

    #[test]
    fn binomial_like_jitter_stays_in_control() {
        // Deterministic ±2-event jitter around 95/100 — about 0.9σ of a
        // 100-trial binomial at p=0.95, in-control by construction.
        let mut c = chart(10);
        for b in 0..300u64 {
            let events = 95 + ((b * 37 % 5) as i64 - 2);
            assert!(
                c.observe(b, events as u64, 100).is_none(),
                "batch {b} false-alarmed"
            );
        }
    }

    #[test]
    fn step_shift_is_flagged_fast_and_downward() {
        let mut c = chart(10);
        let mut onset = None;
        for b in 0..40u64 {
            // 4σ step at batch 20: yield 95% → 86% at 100-die batches.
            let events = if b < 20 { 95 } else { 86 };
            if let Some(e) = c.observe(b, events, 100) {
                onset = Some(e);
                break;
            }
        }
        let e = onset.expect("shift must be flagged");
        assert!(e.batch >= 20 && e.batch <= 24, "latency: batch {}", e.batch);
        assert_eq!(e.direction, Direction::Down);
        assert!(e.magnitude_sigma > 2.0);
        assert!((e.mean - 0.95).abs() < 0.01);
    }

    #[test]
    fn upward_shift_reports_up() {
        let mut c = SpcChart::new(
            "recovered_rate",
            SpcConfig {
                baseline: 8,
                ..SpcConfig::default()
            },
        );
        let mut onset = None;
        for b in 0..40u64 {
            let events = if b < 16 { 2 } else { 14 };
            if let Some(e) = c.observe(b, events, 100) {
                onset = Some(e);
                break;
            }
        }
        let e = onset.expect("upward shift must be flagged");
        assert_eq!(e.direction, Direction::Up);
        assert!(e.batch >= 16 && e.batch <= 20);
    }

    #[test]
    fn onset_is_emitted_once_per_violation() {
        let mut c = chart(5);
        let mut excursions = 0;
        for b in 0..60u64 {
            let events = if b < 20 { 95 } else { 80 };
            if c.observe(b, events, 100).is_some() {
                excursions += 1;
            }
        }
        // The shift persists for 40 batches but the onset fires once;
        // the CUSUM reset may re-trip after draining, so allow a small
        // count — never one per batch.
        assert!(
            (1..=4).contains(&excursions),
            "expected a handful of onsets, got {excursions}"
        );
    }

    #[test]
    fn min_rate_floor_tames_rare_event_metrics() {
        // Baseline of exactly zero events; later batches see one event
        // each (1%). Without the σ floor this would be an instant
        // multi-σ excursion; with it the chart stays quiet.
        let mut c = SpcChart::new("recovered_rate", SpcConfig::default());
        for b in 0..10u64 {
            assert!(c.observe(b, 0, 100).is_none());
        }
        for b in 10..60u64 {
            assert!(
                c.observe(b, 1, 100).is_none(),
                "rare-event false alarm at batch {b}"
            );
        }
    }

    #[test]
    fn excursion_json_line_is_stable_and_parses() {
        let e = SpcExcursion {
            metric: "yield".into(),
            batch: 25,
            direction: Direction::Down,
            magnitude_sigma: 3.25,
            value: 0.86,
            mean: 0.9512,
            ewma: 0.9101,
            cusum: 5.5,
            chart: "cusum",
        };
        let line = e.to_json_line();
        assert_eq!(line, e.to_json_line(), "rendering must be deterministic");
        let v = crate::json::parse(&line).expect("ledger line parses");
        assert_eq!(v.get("metric").and_then(|m| m.as_str()), Some("yield"));
        assert_eq!(v.get("batch").and_then(|b| b.as_u64()), Some(25));
        assert_eq!(v.get("direction").and_then(|d| d.as_str()), Some("down"));
    }

    #[test]
    fn chart_state_is_a_pure_function_of_the_feed() {
        let run = || {
            let mut c = chart(10);
            let mut out = Vec::new();
            for b in 0..50u64 {
                let events = if b < 30 { 95 } else { 88 };
                if let Some(e) = c.observe(b, events, 100) {
                    out.push(e.to_json_line());
                }
            }
            (out, c.points().to_vec())
        };
        assert_eq!(run(), run());
    }
}
