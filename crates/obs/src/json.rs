//! A minimal JSON parser, used to *validate* the JSON the workspace emits
//! (trace JSON Lines, metrics snapshots, bench reports) without pulling in
//! an external dependency.
//!
//! Supports the full JSON grammar except `\u` surrogate pairs are decoded
//! leniently (each escape becomes the code point as-is). Numbers are kept
//! as `f64`, which is exact for every integer the stack emits below 2^53;
//! larger integers lose precision — fine for validation, so callers that
//! need exact u64s should compare strings instead.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order normalized).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer value, if this is a number with no fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or of
/// trailing non-whitespace after the document.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(JsonValue::String),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_owned())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "non-utf8 escape".to_owned())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "non-utf8 string content".to_owned())?;
                let ch = rest.chars().next().ok_or("empty string tail")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open", "{'a':1}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_trace_record_json_line() {
        use crate::event::{TraceEvent, TraceRecord};
        let line = TraceRecord {
            seq: 1,
            cycle: 99,
            depth: 0,
            event: TraceEvent::WdrCapture {
                done: true,
                signature: 0xABCD,
            },
        }
        .to_json_line();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("WdrCapture"));
        assert_eq!(v.get("signature").unwrap().as_u64(), Some(0xABCD));
        assert_eq!(v.get("done").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"\\u0041\\u00e9 é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
