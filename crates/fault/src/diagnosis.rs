//! Diagnosis support: syndromes, the diagnostic matrix, and equivalent
//! fault classes (paper §3.2 step 3 and Table 5).

use std::collections::HashMap;

/// A running digest of a fault's observable behaviour over a test.
///
/// Two faults are *equivalent under the applied test* when their syndromes
/// are identical — the test cannot tell them apart, so they fall into the
/// same equivalent fault class of the diagnostic matrix. The digest is a
/// 64-bit FNV-1a stream over `(when, what)` observation events plus an
/// event counter (collisions would need identical hashes *and* counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Syndrome {
    hash: u64,
    events: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Syndrome {
    /// A fresh syndrome with no recorded events.
    pub fn new() -> Self {
        Syndrome {
            hash: FNV_OFFSET,
            events: 0,
        }
    }

    /// Records one observation event, e.g. `(cycle, output_index)` for a
    /// per-cycle mismatch or `(read_index, signature)` for a MISR readout.
    pub fn record(&mut self, when: u64, what: u64) {
        for word in [when, what] {
            for byte in word.to_le_bytes() {
                self.hash ^= byte as u64;
                self.hash = self.hash.wrapping_mul(FNV_PRIME);
            }
        }
        self.events = self.events.saturating_add(1);
    }

    /// Whether no event was ever recorded (fault-free behaviour).
    pub fn is_clean(&self) -> bool {
        self.events == 0
    }

    /// Number of recorded events.
    pub fn events(&self) -> u32 {
        self.events
    }
}

impl Default for Syndrome {
    fn default() -> Self {
        Self::new()
    }
}

/// The diagnostic matrix, reduced to its equivalence structure: groups of
/// detected faults whose syndromes are identical.
#[derive(Debug, Clone)]
pub struct DiagnosticMatrix {
    classes: Vec<Vec<usize>>,
    detected: usize,
}

impl DiagnosticMatrix {
    /// Builds the matrix from per-fault syndromes.
    ///
    /// Faults with a clean syndrome (undetected by the test) are excluded:
    /// the paper's class sizes measure how precisely *detected* faults can
    /// be located.
    pub fn from_syndromes(syndromes: &[Syndrome]) -> Self {
        let mut by_syndrome: HashMap<Syndrome, Vec<usize>> = HashMap::new();
        let mut detected = 0;
        for (i, s) in syndromes.iter().enumerate() {
            if s.is_clean() {
                continue;
            }
            detected += 1;
            by_syndrome.entry(*s).or_default().push(i);
        }
        let mut classes: Vec<Vec<usize>> = by_syndrome.into_values().collect();
        classes.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        DiagnosticMatrix { classes, detected }
    }

    /// The equivalent fault classes, largest first.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Number of faults contributing (detected faults).
    pub fn detected(&self) -> usize {
        self.detected
    }

    /// Aggregate class-size statistics (Table 5's "Max size" / "Med size").
    pub fn stats(&self) -> EquivalentClassStats {
        let max_size = self.classes.first().map_or(0, Vec::len);
        let mean_size = if self.classes.is_empty() {
            0.0
        } else {
            self.detected as f64 / self.classes.len() as f64
        };
        let singletons = self.classes.iter().filter(|c| c.len() == 1).count();
        EquivalentClassStats {
            classes: self.classes.len(),
            detected: self.detected,
            max_size,
            mean_size,
            singletons,
        }
    }

    /// Diagnostic resolution: fraction of detected faults that are uniquely
    /// locatable (singleton classes).
    pub fn resolution(&self) -> f64 {
        if self.detected == 0 {
            return 0.0;
        }
        let singles = self.classes.iter().filter(|c| c.len() == 1).count();
        singles as f64 / self.detected as f64
    }
}

/// Summary statistics of the equivalent fault classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalentClassStats {
    /// Number of distinct classes.
    pub classes: usize,
    /// Number of detected faults partitioned into those classes.
    pub detected: usize,
    /// Size of the largest class (paper: "Max size").
    pub max_size: usize,
    /// Mean class size (paper: "Med size").
    pub mean_size: f64,
    /// Number of singleton classes (uniquely diagnosable faults).
    pub singletons: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_collide_different_ones_do_not() {
        let mut a = Syndrome::new();
        let mut b = Syndrome::new();
        let mut c = Syndrome::new();
        for t in 0..10 {
            a.record(t, 1);
            b.record(t, 1);
            c.record(t, 2);
        }
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn order_matters() {
        let mut a = Syndrome::new();
        a.record(1, 0);
        a.record(2, 0);
        let mut b = Syndrome::new();
        b.record(2, 0);
        b.record(1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn matrix_groups_and_excludes_clean() {
        let mut s1 = Syndrome::new();
        s1.record(5, 3);
        let s2 = s1; // same behaviour
        let mut s3 = Syndrome::new();
        s3.record(5, 4);
        let clean = Syndrome::new();
        let m = DiagnosticMatrix::from_syndromes(&[s1, s2, s3, clean]);
        assert_eq!(m.detected(), 3);
        let stats = m.stats();
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.max_size, 2);
        assert!((stats.mean_size - 1.5).abs() < 1e-9);
        assert_eq!(stats.singletons, 1);
        assert!((m.resolution() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_benign() {
        let m = DiagnosticMatrix::from_syndromes(&[Syndrome::new()]);
        assert_eq!(m.stats().classes, 0);
        assert_eq!(m.stats().max_size, 0);
        assert_eq!(m.resolution(), 0.0);
    }
}
