//! Minimal inline-SVG chart rendering for the campaign report.
//!
//! Everything renders to a plain SVG string with **no external references
//! and no scripting** — styling hangs off CSS classes (`s1`–`s3` for the
//! categorical series slots, `seq0`–`seq7` for the sequential ramp, `grid`,
//! `axis`, `ink`, `muted`) that the embedding document defines, so the same
//! markup follows the page's light/dark palette. Hover detail ships as
//! native SVG `<title>` tooltips on enlarged hit targets; identity is
//! carried by a legend plus direct labels, never by color alone.

use std::fmt::Write as _;

/// Escapes a string for use in SVG/HTML text content or attributes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(ch),
        }
    }
    out
}

fn fmt_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.1}")
    }
}

/// One line-chart series: a label and `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct LineSeries {
    /// Series label (legend + direct label).
    pub label: String,
    /// Data points, x ascending.
    pub points: Vec<(f64, f64)>,
}

const LINE_W: f64 = 640.0;
const LINE_H: f64 = 300.0;
const M_LEFT: f64 = 52.0;
const M_RIGHT: f64 = 150.0;
const M_TOP: f64 = 30.0;
const M_BOTTOM: f64 = 42.0;

/// Renders overlaid step-after line series (coverage curves) as one SVG.
/// `y_max` fixes the y domain top (e.g. `100.0` for percent); `None`
/// scales to the data. One y axis only; a legend appears for ≥ 2 series
/// and every series carries a direct label at its last point.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[LineSeries],
    y_max: Option<f64>,
) -> String {
    let pw = LINE_W - M_LEFT - M_RIGHT;
    let ph = LINE_H - M_TOP - M_BOTTOM;
    let x_hi = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(1.0_f64, f64::max);
    let y_hi = y_max.unwrap_or_else(|| {
        series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(1.0_f64, f64::max)
    });
    let sx = |x: f64| M_LEFT + pw * (x / x_hi).clamp(0.0, 1.0);
    let sy = |y: f64| M_TOP + ph * (1.0 - (y / y_hi).clamp(0.0, 1.0));

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg class=\"chart\" viewBox=\"0 0 {LINE_W} {LINE_H}\" width=\"{LINE_W}\" height=\"{LINE_H}\" role=\"img\" aria-label=\"{}\">",
        escape(title)
    );
    let _ = write!(
        s,
        "<text class=\"ink title\" x=\"{M_LEFT}\" y=\"18\">{}</text>",
        escape(title)
    );
    // Gridlines + y ticks (5 divisions, one axis).
    for i in 0..=4 {
        let v = y_hi * f64::from(i) / 4.0;
        let y = sy(v);
        let _ = write!(
            s,
            "<line class=\"grid\" x1=\"{M_LEFT}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\"/>\
             <text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>",
            M_LEFT + pw,
            M_LEFT - 6.0,
            y + 3.5,
            fmt_num(v)
        );
    }
    // X ticks.
    for i in 0..=4 {
        let v = x_hi * f64::from(i) / 4.0;
        let x = sx(v);
        let _ = write!(
            s,
            "<text class=\"muted tick\" x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            M_TOP + ph + 16.0,
            fmt_num(v)
        );
    }
    // Baseline.
    let _ = write!(
        s,
        "<line class=\"axis\" x1=\"{M_LEFT}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>",
        M_TOP + ph,
        M_LEFT + pw,
        M_TOP + ph
    );
    // Axis labels.
    let _ = write!(
        s,
        "<text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
        M_LEFT + pw / 2.0,
        LINE_H - 8.0,
        escape(x_label)
    );
    let _ = write!(
        s,
        "<text class=\"muted tick\" transform=\"translate(14,{:.1}) rotate(-90)\" text-anchor=\"middle\">{}</text>",
        M_TOP + ph / 2.0,
        escape(y_label)
    );

    // Series: step-after polylines, slot classes in fixed order.
    for (si, ser) in series.iter().enumerate() {
        if ser.points.is_empty() {
            continue;
        }
        let slot = si % 3 + 1;
        let mut pts = String::new();
        let mut prev_y: Option<f64> = None;
        for &(x, y) in &ser.points {
            let (px, py) = (sx(x), sy(y));
            if let Some(py0) = prev_y {
                let _ = write!(pts, "{px:.1},{py0:.1} ");
            }
            let _ = write!(pts, "{px:.1},{py:.1} ");
            prev_y = Some(py);
        }
        // Extend the last level to the right edge of the plot.
        if let (Some(py0), Some(&(lx, _))) = (prev_y, ser.points.last()) {
            if lx < x_hi {
                let _ = write!(pts, "{:.1},{py0:.1}", sx(x_hi));
            }
        }
        let _ = write!(
            s,
            "<polyline class=\"line s{slot}\" fill=\"none\" points=\"{}\"/>",
            pts.trim_end()
        );
        // Hover hit targets with native tooltips (subsampled to ≤ 32).
        let stride = (ser.points.len() / 32).max(1);
        for &(x, y) in ser.points.iter().step_by(stride) {
            let _ = write!(
                s,
                "<circle class=\"hit\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"8\" fill=\"transparent\">\
                 <title>{}: {} @ {}</title></circle>",
                sx(x),
                sy(y),
                escape(&ser.label),
                fmt_num(y),
                fmt_num(x)
            );
        }
        // Direct label at the series' last point.
        if let Some(&(_, ly)) = ser.points.last() {
            let _ = write!(
                s,
                "<text class=\"ink tick\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                M_LEFT + pw + 6.0,
                sy(ly) + 3.5,
                escape(&ser.label)
            );
        }
    }

    // Legend (top-right) whenever identity needs more than the title.
    if series.len() >= 2 {
        for (si, ser) in series.iter().enumerate() {
            let slot = si % 3 + 1;
            let y = M_TOP + 10.0 + 16.0 * si as f64;
            let _ = write!(
                s,
                "<rect class=\"fill-s{slot}\" x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" rx=\"2\"/>\
                 <text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                LINE_W - M_RIGHT + 24.0,
                y - 8.0,
                LINE_W - M_RIGHT + 38.0,
                y,
                escape(&ser.label)
            );
        }
    }
    s.push_str("</svg>");
    s
}

/// One horizontal bar: label, value, hover detail, and a sequential-ramp
/// step (`0..8`, light → dark) carrying the magnitude encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Row label.
    pub label: String,
    /// Bar value.
    pub value: f64,
    /// Hover tooltip body.
    pub detail: String,
    /// Sequential ramp step, 0 (lightest) ..= 7 (darkest).
    pub ramp: u8,
}

/// Renders a horizontal bar chart (e.g. the per-module toggle heatmap).
/// Values are labeled directly on every bar (the relief for light ramp
/// steps), with `suffix` appended (`"%"`).
pub fn hbar_chart(title: &str, bars: &[Bar], max_value: f64, suffix: &str) -> String {
    let row_h = 26.0;
    let left = 120.0;
    let width = 560.0;
    let pw = width - left - 80.0;
    let height = 34.0 + row_h * bars.len() as f64 + 8.0;
    let hi = max_value.max(1e-9);
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg class=\"chart\" viewBox=\"0 0 {width} {height:.0}\" width=\"{width}\" height=\"{height:.0}\" role=\"img\" aria-label=\"{}\">",
        escape(title)
    );
    let _ = write!(
        s,
        "<text class=\"ink title\" x=\"8\" y=\"18\">{}</text>",
        escape(title)
    );
    for (i, b) in bars.iter().enumerate() {
        let y = 34.0 + row_h * i as f64;
        let w = pw * (b.value / hi).clamp(0.0, 1.0);
        let _ = write!(
            s,
            "<text class=\"ink tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>",
            left - 8.0,
            y + row_h / 2.0 + 3.5,
            escape(&b.label)
        );
        let _ = write!(
            s,
            "<rect class=\"bar seq{}\" x=\"{left}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" rx=\"4\">\
             <title>{}</title></rect>",
            b.ramp.min(7),
            y + 4.0,
            w.max(1.0),
            row_h - 8.0,
            escape(&b.detail)
        );
        let _ = write!(
            s,
            "<text class=\"ink tick\" x=\"{:.1}\" y=\"{:.1}\">{}{}</text>",
            left + w.max(1.0) + 6.0,
            y + row_h / 2.0 + 3.5,
            fmt_num(b.value),
            escape(suffix)
        );
    }
    s.push_str("</svg>");
    s
}

/// Renders a vertical bar histogram (e.g. syndrome class sizes): one
/// categorical series, direct count labels above each bar.
pub fn vbar_chart(title: &str, x_label: &str, bars: &[(String, f64)]) -> String {
    let width = 460.0;
    let height = 240.0;
    let left = 40.0;
    let top = 30.0;
    let bottom = 44.0;
    let pw = width - left - 16.0;
    let ph = height - top - bottom;
    let hi = bars.iter().map(|b| b.1).fold(1.0_f64, f64::max);
    let n = bars.len().max(1) as f64;
    let slot_w = pw / n;
    let bar_w = (slot_w - 6.0).clamp(4.0, 48.0);
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg class=\"chart\" viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" role=\"img\" aria-label=\"{}\">",
        escape(title)
    );
    let _ = write!(
        s,
        "<text class=\"ink title\" x=\"8\" y=\"18\">{}</text>",
        escape(title)
    );
    let base = top + ph;
    let _ = write!(
        s,
        "<line class=\"axis\" x1=\"{left}\" y1=\"{base:.1}\" x2=\"{:.1}\" y2=\"{base:.1}\"/>",
        left + pw
    );
    for (i, (label, v)) in bars.iter().enumerate() {
        let x = left + slot_w * i as f64 + (slot_w - bar_w) / 2.0;
        let h = ph * (v / hi).clamp(0.0, 1.0);
        let _ = write!(
            s,
            "<rect class=\"bar fill-s1\" x=\"{x:.1}\" y=\"{:.1}\" width=\"{bar_w:.1}\" height=\"{:.1}\" rx=\"4\">\
             <title>{}: {}</title></rect>",
            base - h.max(1.0),
            h.max(1.0),
            escape(label),
            fmt_num(*v)
        );
        let _ = write!(
            s,
            "<text class=\"ink tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            x + bar_w / 2.0,
            base - h.max(1.0) - 4.0,
            fmt_num(*v)
        );
        let _ = write!(
            s,
            "<text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            x + bar_w / 2.0,
            base + 14.0,
            escape(label)
        );
    }
    let _ = write!(
        s,
        "<text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
        left + pw / 2.0,
        height - 8.0,
        escape(x_label)
    );
    s.push_str("</svg>");
    s
}

/// One timeline event: a lane name (event type), a time coordinate, and
/// hover detail.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Time (cumulative TCK cycle).
    pub cycle: u64,
    /// Lane the event belongs to (event type).
    pub lane: String,
    /// Hover tooltip body.
    pub detail: String,
}

/// Renders a session timeline: one horizontal lane per event type (in
/// first-appearance order), a marker per event with a native tooltip.
/// Identity is carried by lane position and label, not color.
pub fn timeline(title: &str, x_label: &str, points: &[TimelinePoint]) -> String {
    let mut lanes: Vec<&str> = Vec::new();
    for p in points {
        if !lanes.iter().any(|&l| l == p.lane) {
            lanes.push(&p.lane);
        }
    }
    let row_h = 22.0;
    let left = 150.0;
    let width = 640.0;
    let pw = width - left - 24.0;
    let height = 34.0 + row_h * lanes.len().max(1) as f64 + 30.0;
    let hi = points.iter().map(|p| p.cycle).max().unwrap_or(1).max(1) as f64;
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg class=\"chart\" viewBox=\"0 0 {width} {height:.0}\" width=\"{width}\" height=\"{height:.0}\" role=\"img\" aria-label=\"{}\">",
        escape(title)
    );
    let _ = write!(
        s,
        "<text class=\"ink title\" x=\"8\" y=\"18\">{}</text>",
        escape(title)
    );
    for (i, lane) in lanes.iter().enumerate() {
        let y = 34.0 + row_h * i as f64 + row_h / 2.0;
        let _ = write!(
            s,
            "<text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\
             <line class=\"grid\" x1=\"{left}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\"/>",
            left - 8.0,
            y + 3.5,
            escape(lane),
            left + pw
        );
    }
    for p in points {
        let Some(li) = lanes.iter().position(|&l| l == p.lane) else {
            continue;
        };
        let x = left + pw * (p.cycle as f64 / hi).clamp(0.0, 1.0);
        let y = 34.0 + row_h * li as f64 + row_h / 2.0;
        let _ = write!(
            s,
            "<circle class=\"mark fill-s1\" cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"4\">\
             <title>{} @ TCK {}: {}</title></circle>",
            escape(&p.lane),
            p.cycle,
            escape(&p.detail)
        );
    }
    let base = 34.0 + row_h * lanes.len().max(1) as f64;
    let _ = write!(
        s,
        "<line class=\"axis\" x1=\"{left}\" y1=\"{base:.1}\" x2=\"{:.1}\" y2=\"{base:.1}\"/>",
        left + pw
    );
    for i in 0..=4 {
        let v = hi * f64::from(i) / 4.0;
        let _ = write!(
            s,
            "<text class=\"muted tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            left + pw * f64::from(i) / 4.0,
            base + 14.0,
            fmt_num(v)
        );
    }
    let _ = write!(
        s,
        "<text class=\"muted tick\" x=\"{:.1}\" y=\"{height:.0}\" text-anchor=\"middle\" dy=\"-4\">{}</text>",
        left + pw / 2.0,
        escape(x_label)
    );
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_markup() {
        assert_eq!(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
    }

    #[test]
    fn line_chart_has_one_polyline_per_series_and_a_legend() {
        let series = vec![
            LineSeries {
                label: "BIT_NODE".into(),
                points: vec![(0.0, 10.0), (50.0, 60.0), (100.0, 62.0)],
            },
            LineSeries {
                label: "CHECK_NODE".into(),
                points: vec![(0.0, 5.0), (80.0, 30.0)],
            },
        ];
        let svg = line_chart("coverage", "patterns", "%", &series, Some(100.0));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("class=\"line s1\""));
        assert!(svg.contains("class=\"line s2\""));
        // Legend swatches for 2 series; direct labels too.
        assert_eq!(svg.matches("<rect class=\"fill-s").count(), 2);
        assert!(svg.matches("BIT_NODE").count() >= 2);
        // Single y axis: exactly one rotated y label.
        assert_eq!(svg.matches("rotate(-90)").count(), 1);
        assert!(svg.contains("<title>"));
    }

    #[test]
    fn single_series_skips_the_legend() {
        let series = vec![LineSeries {
            label: "only".into(),
            points: vec![(0.0, 1.0), (4.0, 2.0)],
        }];
        let svg = line_chart("t", "x", "y", &series, None);
        assert_eq!(svg.matches("<rect class=\"fill-s").count(), 0);
    }

    #[test]
    fn hbar_orders_and_labels() {
        let bars = vec![
            Bar {
                label: "CONTROL_UNIT".into(),
                value: 81.0,
                detail: "33/40 nets".into(),
                ramp: 2,
            },
            Bar {
                label: "BIT_NODE".into(),
                value: 99.0,
                detail: "99/100 nets".into(),
                ramp: 7,
            },
        ];
        let svg = hbar_chart("toggle", &bars, 100.0, "%");
        assert!(svg.contains("seq2"));
        assert!(svg.contains("seq7"));
        assert!(svg.contains("81%"));
        assert!(svg.contains("<title>33/40 nets</title>"));
    }

    #[test]
    fn vbar_renders_every_class() {
        let bars = vec![("1".to_owned(), 12.0), ("2".to_owned(), 3.0)];
        let svg = vbar_chart("classes", "class size", &bars);
        assert_eq!(svg.matches("<rect").count(), 2);
        assert!(svg.contains(">12<"));
    }

    #[test]
    fn timeline_lanes_follow_first_appearance() {
        let pts = vec![
            TimelinePoint {
                cycle: 0,
                lane: "SessionStart".into(),
                detail: "3 modules".into(),
            },
            TimelinePoint {
                cycle: 900,
                lane: "Quarantine".into(),
                detail: "CONTROL_UNIT".into(),
            },
            TimelinePoint {
                cycle: 400,
                lane: "SessionStart".into(),
                detail: "again".into(),
            },
        ];
        let svg = timeline("session", "TCK", &pts);
        assert_eq!(svg.matches("<circle").count(), 3);
        let start = svg.find("SessionStart").unwrap();
        let quar = svg.find("Quarantine").unwrap();
        assert!(start < quar);
        assert!(svg.contains("CONTROL_UNIT"));
    }

    #[test]
    fn charts_reference_no_external_resources() {
        let svg = line_chart("t", "x", "y", &[], Some(100.0));
        for needle in ["http://", "https://", "file://", "<script"] {
            assert!(!svg.contains(needle), "found {needle}");
        }
    }
}
