//! Shared rendering helpers for the `repro` binary and the micro-benches:
//! every table/figure of the paper gets a generator in
//! `soctest-core::experiments`; this crate formats the results next to the
//! paper's numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;

use std::fmt::Write as _;

use soctest_core::experiments::{Fig3Point, Table1Row, Table2, Table3Row, Table4, Table5Row};

/// Renders Table 1 next to the paper's values.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1 — input/output port size [bits]");
    let _ = writeln!(s, "{:<14} {:>8} {:>8}   paper", "component", "in", "out");
    let paper = [(54, 55), (53, 53), (45, 44)];
    for (row, (pi, po)) in rows.iter().zip(paper) {
        let _ = writeln!(
            s,
            "{:<14} {:>8} {:>8}   {}/{}",
            row.component, row.inputs, row.outputs, pi, po
        );
    }
    s
}

/// Renders Table 2 next to the paper's values.
pub fn render_table2(t: &Table2) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2 — area overhead");
    let _ = writeln!(
        s,
        "{:<16} {:>14} {:>12}   paper",
        "component", "area [µm²]", "ovh [%]"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14.2} {:>12}   165,817.88 / —",
        "Serial LDPC", t.core_um2, "-"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14.2} {:>12.1}   22,481.63 / 13.5",
        "BIST engine",
        t.bist_um2,
        t.bist_overhead_percent()
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14.2} {:>12.1}   4,566.94 / 2.8",
        "P1500 wrapper",
        t.wrapper_um2,
        t.wrapper_overhead_percent()
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14.2} {:>12.1}   192,866.51 / 16.4",
        "TOTAL",
        t.core_um2 + t.bist_um2 + t.wrapper_um2,
        t.total_overhead_percent()
    );
    let _ = writeln!(
        s,
        "wrapper share of DfT logic: {:.0}%   (paper: 16%)",
        t.wrapper_share_percent()
    );
    s
}

/// Paper reference cells for Table 3 (SAF%, TDF%, SAF cycles, TDF cycles).
const TABLE3_PAPER: [[(f64, f64, u64, u64); 3]; 3] = [
    // BIT_NODE: BIST, Sequential, Full scan
    [
        (97.8, 95.6, 4096, 4096),
        (93.8, 84.3, 11_340, 16_580),
        (98.5, 91.2, 21_248, 39_168),
    ],
    // CHECK_NODE
    [
        (91.6, 90.7, 4096, 4096),
        (82.9, 76.4, 8374, 7844),
        (93.1, 87.1, 380_064, 866_272),
    ],
    // CONTROL_UNIT
    [
        (97.5, 95.3, 4096, 4096),
        (89.8, 84.0, 3060, 4860),
        (98.6, 91.3, 16_965, 27_405),
    ],
];

/// Renders Table 3 next to the paper's values.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 3 — fault coverage");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(s, "{}", row.component);
        let cells = [&row.bist, &row.sequential, &row.full_scan];
        let names = ["BIST", "Sequential", "Full scan"];
        for (j, (cell, name)) in cells.iter().zip(names).enumerate() {
            let p = TABLE3_PAPER[i][j];
            let _ = writeln!(
                s,
                "  {:<11} faults {:>6}  SAF {:>5.1}% TDF {:>5.1}%  cycles {:>8}/{:>8}  wall {:>8.2?}   paper: SAF {:>4.1}% TDF {:>4.1}% cyc {}/{}",
                name,
                cell.faults,
                cell.saf_percent,
                cell.tdf_percent,
                cell.saf_cycles,
                cell.tdf_cycles,
                cell.wall,
                p.0,
                p.1,
                p.2,
                p.3
            );
        }
    }
    s
}

/// Renders Table 4 next to the paper's values.
pub fn render_table4(t: &Table4) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 4 — maximum frequency [MHz]");
    let rows = [
        ("Original design", t.original_mhz, 438.60),
        ("BIST engine", t.bist_mhz, 431.03),
        ("Sequential (wrapper)", t.wrapper_mhz, 434.14),
        ("Full scan", t.full_scan_mhz, 426.62),
    ];
    let _ = writeln!(
        s,
        "{:<22} {:>10} {:>10}  {:>9}",
        "variant", "fmax", "paper", "Δ vs orig"
    );
    for (name, mhz, paper) in rows {
        let _ = writeln!(
            s,
            "{:<22} {:>10.2} {:>10.2}  {:>8.2}%",
            name,
            mhz,
            paper,
            100.0 * (t.original_mhz - mhz) / t.original_mhz
        );
    }
    s
}

/// Paper reference for Table 5: (max, med) per source per module.
const TABLE5_PAPER: [[(usize, f64); 3]; 3] = [
    [(3, 1.2), (7, 4.4), (3, 1.6)],
    [(4, 1.9), (12, 6.9), (7, 2.7)],
    [(2, 1.3), (8, 5.1), (2, 1.3)],
];

/// Renders Table 5 next to the paper's values.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5 — equivalent fault classes (max / mean size)");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(s, "{}", row.component);
        let cells = [&row.bist, &row.sequential, &row.full_scan];
        let names = ["BIST", "Sequential", "Full scan"];
        for (j, (cell, name)) in cells.iter().zip(names).enumerate() {
            let p = TABLE5_PAPER[i][j];
            let _ = writeln!(
                s,
                "  {:<11} classes {:>5}  max {:>3}  mean {:>5.2}  singles {:>5}   paper: max {} med {}",
                name, cell.classes, cell.max_size, cell.mean_size, cell.singletons, p.0, p.1
            );
        }
    }
    s
}

/// Renders the Fig. 3 sweep.
pub fn render_fig3(points: &[Fig3Point]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 3 — statement coverage / toggle activity vs patterns"
    );
    let _ = writeln!(
        s,
        "{:>10} {:>12} {:>12}",
        "patterns", "stmt [%]", "toggle [%]"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>10} {:>12.1} {:>12.1}",
            p.patterns, p.statement_percent, p.toggle_percent
        );
    }
    s
}

/// Renders a Fig. 4 coverage curve.
pub fn render_fig4(module: &str, curve: &[(u64, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 4 — stuck-at coverage vs applied patterns ({module})"
    );
    let _ = writeln!(s, "{:>10} {:>12}", "patterns", "FC [%]");
    for (n, c) in curve {
        let _ = writeln!(s, "{n:>10} {c:>12.1}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_core::casestudy::CaseStudy;
    use soctest_core::experiments;
    use soctest_tech::Library;

    #[test]
    fn renderers_produce_output() {
        let case = CaseStudy::paper().unwrap();
        let t1 = render_table1(&experiments::table1(&case));
        assert!(t1.contains("BIT_NODE"));
        let t2 = render_table2(&experiments::table2(&case, &Library::cmos_130nm()).unwrap());
        assert!(t2.contains("BIST engine"));
        let t4 = render_table4(&experiments::table4(&case, &Library::cmos_130nm()).unwrap());
        assert!(t4.contains("Full scan"));
    }
}
