//! Sequential 64-lane simulation with explicit flip-flop state.

use soctest_netlist::{NetId, Netlist, NetlistError};

use crate::{broadcast, CombSim};

/// A cycle-accurate sequential simulator.
///
/// Each net carries 64 lanes (see the [crate docs](crate)); flip-flops hold
/// one word of state per lane set. A [`SeqSim::step`] evaluates the
/// combinational logic and then clocks every flip-flop.
#[derive(Debug, Clone)]
pub struct SeqSim<'a> {
    netlist: &'a Netlist,
    comb: CombSim,
    dffs: Vec<NetId>,
    cycle: u64,
}

impl<'a> SeqSim<'a> {
    /// Prepares a simulator with all flip-flops reset to 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        Ok(SeqSim {
            netlist,
            comb: CombSim::new(netlist)?,
            dffs: netlist.dffs(),
            cycle: 0,
        })
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Number of clock cycles applied since construction or [`SeqSim::reset`].
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all flip-flops to 0 and the cycle counter.
    pub fn reset(&mut self) {
        for &d in &self.dffs {
            self.comb.set(d, 0);
        }
        self.cycle = 0;
    }

    /// Writes a 64-lane input word.
    #[inline]
    pub fn set_input(&mut self, net: NetId, word: u64) {
        self.comb.set(net, word);
    }

    /// Writes the same boolean to all 64 lanes of an input.
    #[inline]
    pub fn set_input_bit(&mut self, net: NetId, bit: bool) {
        self.comb.set(net, broadcast(bit));
    }

    /// Writes a whole input port from a lane-0 integer, broadcast to all
    /// lanes (bit *i* of `value` goes to port bit *i*).
    ///
    /// Returns `false` if the port does not exist or is not an input.
    pub fn drive_port(&mut self, name: &str, value: u64) -> bool {
        match self.netlist.port(name) {
            Some(p) => {
                let bits: Vec<NetId> = p.bits().to_vec();
                for (i, net) in bits.into_iter().enumerate() {
                    self.set_input_bit(net, (value >> i) & 1 == 1);
                }
                true
            }
            None => false,
        }
    }

    /// Evaluates combinational logic for the current cycle without clocking.
    pub fn eval_comb(&mut self) {
        self.comb.eval(self.netlist);
    }

    /// Clocks every flip-flop (their `d` pins must be up to date, i.e. call
    /// [`SeqSim::eval_comb`] first or use [`SeqSim::step`]).
    pub fn clock(&mut self) {
        // Sample every d pin before writing any q: a flip-flop whose d pin
        // is another flip-flop's q net must see the pre-edge value.
        let sampled: Vec<u64> = self
            .dffs
            .iter()
            .map(|&q| self.comb.get(self.netlist.gate(q).pins[0]))
            .collect();
        for (&q, v) in self.dffs.iter().zip(sampled) {
            self.comb.set(q, v);
        }
        self.cycle += 1;
    }

    /// One full clock cycle: evaluate, then clock.
    pub fn step(&mut self) {
        self.eval_comb();
        self.clock();
    }

    /// Reads a net's 64-lane word (valid after [`SeqSim::eval_comb`]).
    #[inline]
    pub fn get(&self, net: NetId) -> u64 {
        self.comb.get(net)
    }

    /// Reads one lane of an output port as an integer (bit *i* of the result
    /// is port bit *i* in that lane). Returns `None` for unknown ports.
    pub fn read_port_lane(&self, name: &str, lane: u32) -> Option<u64> {
        let p = self.netlist.port(name)?;
        let mut out = 0u64;
        for (i, &net) in p.bits().iter().enumerate() {
            out |= ((self.comb.get(net) >> lane) & 1) << i;
        }
        Some(out)
    }

    /// Snapshot of the flip-flop state words, in [`Netlist::dffs`] order.
    pub fn state(&self) -> Vec<u64> {
        self.dffs.iter().map(|&d| self.comb.get(d)).collect()
    }

    /// Restores a state snapshot taken with [`SeqSim::state`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the flip-flop count.
    pub fn restore_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.dffs.len(), "state snapshot size");
        for (&d, &w) in self.dffs.iter().zip(state) {
            self.comb.set(d, w);
        }
    }

    /// Access to the underlying combinational evaluator.
    pub fn comb(&self) -> &CombSim {
        &self.comb
    }

    /// Mutable access to the underlying combinational evaluator.
    pub fn comb_mut(&mut self) -> &mut CombSim {
        &mut self.comb
    }

    /// The flip-flop nets, in state order.
    pub fn dffs(&self) -> &[NetId] {
        &self.dffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_netlist::ModuleBuilder;

    fn counter() -> Netlist {
        let mut mb = ModuleBuilder::new("cnt");
        let en = mb.input("en");
        let clr = mb.input("clr");
        let q = mb.counter(8, en, clr);
        mb.output_bus("q", &q);
        mb.finish().unwrap()
    }

    #[test]
    fn counter_counts_and_clears() {
        let nl = counter();
        let mut sim = SeqSim::new(&nl).unwrap();
        sim.drive_port("en", 1);
        sim.drive_port("clr", 0);
        for _ in 0..10 {
            sim.step();
        }
        assert_eq!(sim.read_port_lane("q", 0), Some(10));
        assert_eq!(sim.read_port_lane("q", 63), Some(10));
        sim.drive_port("clr", 1);
        sim.step();
        assert_eq!(sim.read_port_lane("q", 7), Some(0));
        assert_eq!(sim.cycle(), 11);
    }

    #[test]
    fn enable_holds_value() {
        let nl = counter();
        let mut sim = SeqSim::new(&nl).unwrap();
        sim.drive_port("en", 1);
        sim.drive_port("clr", 0);
        sim.step();
        sim.step();
        sim.drive_port("en", 0);
        sim.step();
        sim.step();
        assert_eq!(sim.read_port_lane("q", 0), Some(2));
    }

    #[test]
    fn state_roundtrip() {
        let nl = counter();
        let mut sim = SeqSim::new(&nl).unwrap();
        sim.drive_port("en", 1);
        sim.drive_port("clr", 0);
        for _ in 0..5 {
            sim.step();
        }
        let snap = sim.state();
        for _ in 0..3 {
            sim.step();
        }
        assert_eq!(sim.read_port_lane("q", 0), Some(8));
        sim.restore_state(&snap);
        sim.eval_comb();
        assert_eq!(sim.read_port_lane("q", 0), Some(5));
    }

    #[test]
    fn reset_zeroes_state() {
        let nl = counter();
        let mut sim = SeqSim::new(&nl).unwrap();
        sim.drive_port("en", 1);
        sim.drive_port("clr", 0);
        sim.step();
        sim.reset();
        sim.eval_comb();
        assert_eq!(sim.read_port_lane("q", 0), Some(0));
        assert_eq!(sim.cycle(), 0);
    }
}
