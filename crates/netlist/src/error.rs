//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

use crate::NetId;

/// Errors raised while building or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate references a net id that does not exist.
    DanglingNet {
        /// The offending gate (by driven net id).
        gate: NetId,
        /// The missing net referenced by one of its pins.
        missing: NetId,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// One net known to sit on the cycle.
        on_cycle: NetId,
    },
    /// A port name was used twice within the same direction.
    DuplicatePort {
        /// The clashing name.
        name: String,
    },
    /// An operation required equal bus widths but received different ones.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A port was requested with width zero.
    EmptyBus {
        /// The port or signal name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingNet { gate, missing } => {
                write!(f, "gate {gate} references missing net {missing}")
            }
            NetlistError::CombinationalCycle { on_cycle } => {
                write!(f, "combinational cycle through net {on_cycle}")
            }
            NetlistError::DuplicatePort { name } => {
                write!(f, "duplicate port name `{name}`")
            }
            NetlistError::WidthMismatch { left, right, op } => {
                write!(f, "width mismatch in {op}: {left} vs {right} bits")
            }
            NetlistError::EmptyBus { name } => {
                write!(f, "bus `{name}` has zero width")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetlistError::WidthMismatch {
            left: 4,
            right: 8,
            op: "add",
        };
        let msg = e.to_string();
        assert!(msg.starts_with("width mismatch"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
