//! Execution-engine selection for the fault simulators.

/// Which execution engine [`crate::CombFaultSim`] and [`crate::SeqFaultSim`]
/// sweep their hot loops with.
///
/// Both engines are bit-identical by contract — detection vectors,
/// syndromes, coverage curves, and scheduling counters all match — and the
/// contract is pinned by the `kernel` pair in `crates/conformance` plus the
/// equivalence asserts in `repro --bench-faultsim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// The compiled structure-of-arrays kernel
    /// ([`soctest_netlist::CompiledNetlist`]): levelized contiguous
    /// schedule, cone-of-influence incremental re-evaluation against the
    /// cached good trace, and 256-bit pattern lanes in the combinational
    /// PPSFP loop. The default.
    #[default]
    Kernel,
    /// The original graph-walking engine. Slower; kept as the brute-force
    /// conformance oracle the kernel is verified against.
    Graph,
}

impl SimEngine {
    /// Short lowercase label (`"kernel"` / `"graph"`) for logs and benches.
    pub fn label(self) -> &'static str {
        match self {
            SimEngine::Kernel => "kernel",
            SimEngine::Graph => "graph",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_the_default_engine() {
        assert_eq!(SimEngine::default(), SimEngine::Kernel);
        assert_eq!(SimEngine::Kernel.label(), "kernel");
        assert_eq!(SimEngine::Graph.label(), "graph");
    }
}
