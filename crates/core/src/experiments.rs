//! One function per table and figure of the paper's evaluation.
//!
//! Each function returns structured rows; the `repro` binary in
//! `soctest-bench` renders them next to the paper's numbers, and
//! EXPERIMENTS.md records the comparison.

use std::time::Duration;

use soctest_atpg::{ScanAtpg, SequentialAtpg, SequentialAtpgConfig};
use soctest_fault::{
    CombFaultSim, DiagnosticMatrix, EquivalentClassStats, FaultUniverse, ParallelPolicy,
    SeqFaultSim, SeqFaultSimConfig,
};
use soctest_tech::Library;

use crate::casestudy::CaseStudy;
use crate::error::SessionError;
use crate::eval::{self, FaultModel};

/// Effort knobs for the expensive experiments. [`Budget::paper`] mirrors
/// the paper's configuration; [`Budget::quick`] keeps CI-sized tests fast.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// BIST patterns per execution (the paper applies 4,096).
    pub bist_patterns: u64,
    /// Random prefix of the sequential baseline, in cycles.
    pub seq_random_cycles: usize,
    /// Deterministic targets attempted by the sequential baseline.
    pub seq_max_targets: usize,
    /// Random patterns of the scan baseline.
    pub scan_random: usize,
    /// Deterministic targets attempted by the scan baseline (`None` = all).
    pub scan_max_targets: Option<usize>,
    /// Patterns used for diagnosis (step 3).
    pub diag_patterns: u64,
    /// Keep one fault in `stride` for diagnosis.
    pub diag_stride: usize,
    /// Worker-thread policy for every fault-simulation phase.
    pub parallel: ParallelPolicy,
}

impl Budget {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Budget {
            bist_patterns: 4096,
            seq_random_cycles: 4096,
            seq_max_targets: 400,
            scan_random: 512,
            scan_max_targets: None,
            diag_patterns: 1024,
            diag_stride: 8,
            parallel: ParallelPolicy::default(),
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Budget {
            bist_patterns: 192,
            seq_random_cycles: 128,
            seq_max_targets: 8,
            scan_random: 64,
            scan_max_targets: Some(16),
            diag_patterns: 96,
            diag_stride: 32,
            parallel: ParallelPolicy::default(),
        }
    }
}

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Module name.
    pub component: String,
    /// Input port size in bits.
    pub inputs: usize,
    /// Output port size in bits.
    pub outputs: usize,
}

/// Regenerates Table 1 (module port sizes).
pub fn table1(case: &CaseStudy) -> Vec<Table1Row> {
    case.modules()
        .iter()
        .map(|m| Table1Row {
            component: m.name().to_owned(),
            inputs: m.input_width(),
            outputs: m.output_width(),
        })
        .collect()
}

/// Table 2: area figures.
#[derive(Debug, Clone, Copy)]
pub struct Table2 {
    /// Area of the bare core in µm².
    pub core_um2: f64,
    /// Area added by the BIST engine (pattern generator, collectors,
    /// control, input muxes).
    pub bist_um2: f64,
    /// Area added by the P1500 wrapper.
    pub wrapper_um2: f64,
}

impl Table2 {
    /// BIST overhead relative to the core, percent.
    pub fn bist_overhead_percent(&self) -> f64 {
        100.0 * self.bist_um2 / self.core_um2
    }

    /// Wrapper overhead relative to the core, percent.
    pub fn wrapper_overhead_percent(&self) -> f64 {
        100.0 * self.wrapper_um2 / self.core_um2
    }

    /// Total DfT overhead, percent.
    pub fn total_overhead_percent(&self) -> f64 {
        self.bist_overhead_percent() + self.wrapper_overhead_percent()
    }

    /// The wrapper's share of the whole DfT cost (the paper quantifies the
    /// TAM/wrapper at 16% of the core-level test logic... actually of the
    /// additional logic).
    pub fn wrapper_share_percent(&self) -> f64 {
        100.0 * self.wrapper_um2 / (self.bist_um2 + self.wrapper_um2)
    }
}

/// Regenerates Table 2 (area overhead).
///
/// # Errors
///
/// Propagates netlist-construction errors.
pub fn table2(case: &CaseStudy, lib: &Library) -> Result<Table2, SessionError> {
    let core = lib.area(&case.assemble(false)?).total_um2;
    let with_bist = lib.area(&case.assemble(true)?).total_um2;
    let wrapped = lib.area(&case.wrapped(true)?).total_um2;
    Ok(Table2 {
        core_um2: core,
        bist_um2: with_bist - core,
        wrapper_um2: wrapped - with_bist,
    })
}

/// One pattern source of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Cell {
    /// Collapsed fault count.
    pub faults: usize,
    /// Stuck-at coverage, percent.
    pub saf_percent: f64,
    /// Transition coverage, percent.
    pub tdf_percent: f64,
    /// Clock cycles to apply the stuck-at test.
    pub saf_cycles: u64,
    /// Clock cycles to apply the transition test.
    pub tdf_cycles: u64,
    /// Wall-clock generation + simulation time.
    pub wall: Duration,
}

/// One Table 3 row: a module against the three pattern sources.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Module name.
    pub component: String,
    /// BIST patterns (at speed).
    pub bist: Table3Cell,
    /// Sequential ATPG patterns.
    pub sequential: Table3Cell,
    /// Full-scan patterns.
    pub full_scan: Table3Cell,
}

/// Regenerates Table 3 (fault coverage, test length, CPU time) for every
/// module.
///
/// # Errors
///
/// Propagates simulator and construction errors.
pub fn table3(case: &CaseStudy, budget: &Budget) -> Result<Vec<Table3Row>, SessionError> {
    let pgen = case.pattern_generator();
    let mut rows = Vec::new();
    for (m, module) in case.modules().iter().enumerate() {
        // --- BIST: at-speed patterns from the engine, per-cycle observed.
        let saf_u = FaultUniverse::stuck_at(module);
        let tdf_u = FaultUniverse::transition(module);
        let bist = {
            let started = std::time::Instant::now();
            let seq_cfg = SeqFaultSimConfig {
                parallel: budget.parallel,
                ..Default::default()
            };
            let saf = {
                let mut stim = pgen.stimulus(m, budget.bist_patterns);
                SeqFaultSim::new(&saf_u, seq_cfg.clone()).run(&mut stim)?
            };
            let tdf = {
                let mut stim = pgen.stimulus(m, budget.bist_patterns);
                SeqFaultSim::new(&tdf_u, seq_cfg).run(&mut stim)?
            };
            Table3Cell {
                faults: saf_u.len(),
                saf_percent: saf.coverage_percent(),
                tdf_percent: tdf.coverage_percent(),
                saf_cycles: budget.bist_patterns,
                tdf_cycles: budget.bist_patterns,
                wall: started.elapsed(),
            }
        };
        // --- Sequential ATPG baseline.
        let sequential = {
            let outcome = SequentialAtpg::new(SequentialAtpgConfig {
                random_cycles: budget.seq_random_cycles,
                max_targets: Some(budget.seq_max_targets),
                parallel: budget.parallel,
                ..Default::default()
            })
            .run(module)?;
            Table3Cell {
                faults: outcome.stuck_at.fault_count(),
                saf_percent: outcome.stuck_at.coverage_percent(),
                tdf_percent: outcome.transition.coverage_percent(),
                saf_cycles: outcome.stuck_cycles,
                tdf_cycles: outcome.transition_cycles,
                wall: outcome.wall,
            }
        };
        // --- Full-scan baseline.
        let full_scan = {
            let run = ScanAtpg {
                random_patterns: budget.scan_random,
                max_targets: budget.scan_max_targets,
                parallel: budget.parallel,
                ..Default::default()
            }
            .run(module)?;
            Table3Cell {
                faults: run.outcome.stuck_at.fault_count(),
                saf_percent: run.outcome.stuck_at.coverage_percent(),
                tdf_percent: run.outcome.transition.coverage_percent(),
                saf_cycles: run.outcome.stuck_cycles,
                tdf_cycles: run.outcome.transition_cycles,
                wall: run.outcome.wall,
            }
        };
        rows.push(Table3Row {
            component: module.name().to_owned(),
            bist,
            sequential,
            full_scan,
        });
    }
    Ok(rows)
}

/// Table 4: maximum frequency per design variant, MHz.
#[derive(Debug, Clone, Copy)]
pub struct Table4 {
    /// The bare core.
    pub original_mhz: f64,
    /// Core with the BIST engine inserted.
    pub bist_mhz: f64,
    /// Core behind a standard P1500 wrapper (the "sequential approach").
    pub wrapper_mhz: f64,
    /// Core with multiplexed scan cells (the full-scan approach).
    pub full_scan_mhz: f64,
}

/// Regenerates Table 4 (performance reduction).
///
/// # Errors
///
/// Propagates construction and timing errors.
pub fn table4(case: &CaseStudy, lib: &Library) -> Result<Table4, SessionError> {
    let original = case.assemble(false)?;
    let bist = case.assemble(true)?;
    let wrapper = soctest_p1500::structural::wrap_core(&original)?;
    let scan = soctest_atpg::insert_scan(&original, 2)?.netlist;
    Ok(Table4 {
        original_mhz: lib.timing(&original)?.fmax_mhz,
        bist_mhz: lib.timing(&bist)?.fmax_mhz,
        wrapper_mhz: lib.timing(&wrapper)?.fmax_mhz,
        full_scan_mhz: lib.timing(&scan)?.fmax_mhz,
    })
}

/// One Table 5 row: equivalent-fault-class sizes per pattern source.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Module name.
    pub component: String,
    /// BIST patterns (MISR-observed syndromes).
    pub bist: EquivalentClassStats,
    /// Sequential patterns (per-cycle output syndromes).
    pub sequential: EquivalentClassStats,
    /// Full-scan patterns (per-pattern output syndromes).
    pub full_scan: EquivalentClassStats,
}

/// Regenerates Table 5 (diagnosis: max/med equivalent-class sizes).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn table5(case: &CaseStudy, budget: &Budget) -> Result<Vec<Table5Row>, SessionError> {
    let pgen = case.pattern_generator();
    let mut rows = Vec::new();
    for (m, module) in case.modules().iter().enumerate() {
        // BIST: signature syndromes with periodic reads.
        let bist = eval::step3(
            case,
            m,
            FaultModel::StuckAt,
            budget.diag_patterns,
            (budget.diag_patterns / 16).max(1),
            budget.diag_stride,
            budget.parallel,
        )?
        .stats;
        // Sequential: random functional sequence, per-cycle syndromes.
        let sequential = {
            let mut u = FaultUniverse::stuck_at(module);
            u.retain_sample(budget.diag_stride);
            let rows_in = soctest_atpg::random_rows(
                budget.diag_patterns as usize,
                module.input_width(),
                0xD1A6,
            );
            let mut stim = (rows_in.len() as u64, move |t: u64, out: &mut [bool]| {
                out.copy_from_slice(&rows_in[t as usize]);
            });
            let sim = SeqFaultSim::new(
                &u,
                SeqFaultSimConfig {
                    collect_syndromes: true,
                    parallel: budget.parallel,
                    ..Default::default()
                },
            );
            let r = sim.run(&mut stim)?;
            let syn = r.syndromes.as_ref().ok_or(SessionError::MissingSyndromes)?;
            DiagnosticMatrix::from_syndromes(syn).stats()
        };
        // Full scan: per-pattern syndromes on the scan view.
        let full_scan = {
            let design = soctest_atpg::insert_scan(module, 1)?;
            let sv = soctest_atpg::ScanView::of(&design.netlist)?;
            let mut u = FaultUniverse::stuck_at(&sv.view);
            u.retain_sample(budget.diag_stride);
            let pats = soctest_atpg::random_pattern_set(
                budget.diag_patterns as usize,
                sv.view.primary_inputs().len(),
                0x5CA9,
            );
            let r = CombFaultSim::new(&u)
                .with_syndromes()
                .with_parallelism(budget.parallel)
                .run_stuck_at(&pats)?;
            let syn = r.syndromes.as_ref().ok_or(SessionError::MissingSyndromes)?;
            DiagnosticMatrix::from_syndromes(syn).stats()
        };
        rows.push(Table5Row {
            component: module.name().to_owned(),
            bist,
            sequential,
            full_scan,
        });
        let _ = &pgen;
    }
    Ok(rows)
}

/// One Fig. 3 sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Point {
    /// Patterns applied.
    pub patterns: u64,
    /// Statement coverage, percent.
    pub statement_percent: f64,
    /// Mean toggle activity, percent.
    pub toggle_percent: f64,
}

/// Regenerates the Fig. 3 loop data: statement coverage and toggle
/// activity versus pattern count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig3(case: &CaseStudy, checkpoints: &[u64]) -> Result<Vec<Fig3Point>, SessionError> {
    checkpoints
        .iter()
        .map(|&n| {
            let r = eval::step1(case, n)?;
            Ok(Fig3Point {
                patterns: n,
                statement_percent: r.statement_coverage,
                toggle_percent: r.mean_toggle_percent(),
            })
        })
        .collect()
}

/// Regenerates the Fig. 4 curve for one module: stuck-at coverage versus
/// applied BIST patterns (from the detection times of a single run).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig4(
    case: &CaseStudy,
    module: usize,
    max_patterns: u64,
    points: usize,
) -> Result<Vec<(u64, f64)>, SessionError> {
    fig4_with(
        case,
        module,
        max_patterns,
        points,
        ParallelPolicy::default(),
    )
}

/// [`fig4`] with an explicit worker-thread policy.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig4_with(
    case: &CaseStudy,
    module: usize,
    max_patterns: u64,
    points: usize,
    parallel: ParallelPolicy,
) -> Result<Vec<(u64, f64)>, SessionError> {
    let universe = FaultUniverse::stuck_at(&case.modules()[module]);
    let pgen = case.pattern_generator();
    let mut stim = pgen.stimulus(module, max_patterns);
    let result = SeqFaultSim::new(
        &universe,
        SeqFaultSimConfig {
            parallel,
            ..Default::default()
        },
    )
    .run(&mut stim)?;
    let checkpoints: Vec<u64> = (1..=points as u64)
        .map(|i| i * max_patterns / points as u64)
        .collect();
    Ok(result
        .coverage_curve(&checkpoints)
        .into_iter()
        .map(|(c, n)| (c, 100.0 * n as f64 / universe.len() as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_exactly() {
        let case = CaseStudy::paper().unwrap();
        let rows = table1(&case);
        assert_eq!(rows[0].inputs, 54);
        assert_eq!(rows[0].outputs, 55);
        assert_eq!(rows[1].inputs, 53);
        assert_eq!(rows[1].outputs, 53);
        assert_eq!(rows[2].inputs, 45);
        assert_eq!(rows[2].outputs, 44);
    }

    #[test]
    fn table2_overheads_land_in_the_paper_band() {
        let case = CaseStudy::paper().unwrap();
        let t = table2(&case, &Library::cmos_130nm()).unwrap();
        assert!(t.core_um2 > 0.0);
        assert!(t.bist_um2 > 0.0);
        assert!(t.wrapper_um2 > 0.0);
        let total = t.total_overhead_percent();
        assert!(
            (5.0..40.0).contains(&total),
            "total DfT overhead {total:.1}% out of band"
        );
        assert!(
            t.bist_um2 > t.wrapper_um2,
            "BIST engine outweighs the wrapper"
        );
    }

    #[test]
    fn table4_ordering_matches_the_paper() {
        let case = CaseStudy::paper().unwrap();
        let t = table4(&case, &Library::cmos_130nm()).unwrap();
        assert!(t.original_mhz >= t.wrapper_mhz, "wrapper adds input muxes");
        assert!(t.original_mhz > t.full_scan_mhz, "scan muxes cost the most");
        assert!(t.original_mhz >= t.bist_mhz, "BIST muxes cost a little");
    }

    #[test]
    fn fig4_curve_is_monotone() {
        let case = CaseStudy::paper().unwrap();
        let curve = fig4(&case, 2, 128, 4).unwrap();
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!(curve.last().unwrap().1 > 30.0);
    }
}
