//! Gate-level wrapper structures for area and timing accounting.
//!
//! The behavioral models in this crate answer protocol questions; these
//! netlists answer *cost* questions: the wrapper's silicon area (Table 2)
//! and the frequency penalty its boundary cells put on the functional path
//! (Table 4's "Sequential approach" column — a standard P1500 wrapper with
//! no scan cells inside the core).

use soctest_netlist::{ModuleBuilder, NetId, Netlist, NetlistError, Word};

/// Builds one P1500 input boundary cell inline: a shift stage, an update
/// stage, and the functional-path mux that injects test data in INTEST
/// mode. Returns `(to_core, shift_out)`.
pub fn build_input_cell(
    mb: &mut ModuleBuilder,
    func_in: NetId,
    shift_in: NetId,
    shift_en: NetId,
    update_en: NetId,
    test_mode: NetId,
) -> (NetId, NetId) {
    // Shift stage: captures the chain when shifting, else holds.
    let shift_q = mb.dff_bank(1);
    let shift_d = mb.mux(shift_en, shift_q[0], shift_in);
    mb.connect(&shift_q, &[shift_d]);
    // Update stage: loads from the shift stage on update.
    let upd_q = mb.dff_bank(1);
    let upd_d = mb.mux(update_en, upd_q[0], shift_q[0]);
    mb.connect(&upd_q, &[upd_d]);
    // Functional-path mux — the Table 4 delay cost of wrapping.
    let to_core = mb.mux(test_mode, func_in, upd_q[0]);
    (to_core, shift_q[0])
}

/// Builds one P1500 output boundary cell inline: a capture/shift stage
/// observing the core output. The functional output passes through
/// untouched. Returns the cell's shift output.
pub fn build_output_cell(
    mb: &mut ModuleBuilder,
    core_out: NetId,
    shift_in: NetId,
    shift_en: NetId,
    capture_en: NetId,
) -> NetId {
    let shift_q = mb.dff_bank(1);
    let shifted = mb.mux(shift_en, shift_q[0], shift_in);
    let captured = mb.mux(capture_en, shifted, core_out);
    mb.connect(&shift_q, &[captured]);
    shift_q[0]
}

/// Wraps a core netlist with a standard P1500 boundary: every functional
/// input gets an input cell (shift + update + path mux), every functional
/// output an observation cell; the cells form one chain from `wsi` to
/// `wso`. The WIR itself (3 shift + 3 update flops plus decode) is also
/// instantiated so the area report covers the full wrapper.
///
/// Ports whose name starts with `bist_` are *not* wrapped: they are the
/// BIST engine's command/response interface, which in silicon terminates
/// inside the wrapper's own WCDR/WDR registers rather than at chip pins —
/// wrapping them would double-count boundary cells.
///
/// Ports: the core's ports (same names), plus `wsi`, `wrap_shift`,
/// `wrap_capture`, `wrap_update`, `wrap_test`, and `wso`.
///
/// # Errors
///
/// Propagates netlist-construction errors.
pub fn wrap_core(core: &Netlist) -> Result<Netlist, NetlistError> {
    let mut mb = ModuleBuilder::new(format!("{}_p1500", core.name()));
    let wsi = mb.input("wsi");
    let shift_en = mb.input("wrap_shift");
    let capture_en = mb.input("wrap_capture");
    let update_en = mb.input("wrap_update");
    let test_mode = mb.input("wrap_test");

    // WIR: 3-bit shift + 3-bit update + a few decode gates.
    let wir_shift = {
        let q = mb.dff_bank(3);
        let mut prev = wsi;
        let mut next = Vec::new();
        for &stage in &q {
            next.push(mb.mux(shift_en, stage, prev));
            prev = stage;
        }
        mb.connect(&q, &next);
        q
    };
    let wir_update = {
        let q = mb.dff_bank(3);
        let next = mb.mux_w(update_en, &q, &wir_shift);
        mb.connect(&q, &next);
        q
    };
    let _decode = mb.decode(&wir_update, 5);

    // Input cells, chained after the WIR shift path.
    let mut chain = wir_shift[2];
    let mut input_map = std::collections::HashMap::new();
    let in_ports: Vec<(String, usize)> = core
        .input_ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width()))
        .collect();
    for (name, width) in &in_ports {
        let func = mb.input_bus(name, *width);
        if name.starts_with("bist_") {
            input_map.insert(name.clone(), func);
            continue;
        }
        let mut to_core = Vec::with_capacity(*width);
        for &f in &func {
            let (tc, so) = build_input_cell(&mut mb, f, chain, shift_en, update_en, test_mode);
            to_core.push(tc);
            chain = so;
        }
        input_map.insert(name.clone(), to_core);
    }
    let outs = mb.netlist_mut().instantiate(core, &input_map)?;
    let out_ports: Vec<String> = core
        .output_ports()
        .iter()
        .map(|p| p.name().to_owned())
        .collect();
    for name in &out_ports {
        let bits: Word = outs[name].clone();
        if !name.starts_with("bist_") {
            for &b in &bits {
                chain = build_output_cell(&mut mb, b, chain, shift_en, capture_en);
            }
        }
        mb.output_bus(name, &bits);
    }
    mb.output("wso", chain);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_netlist::ModuleBuilder;
    use soctest_sim::SeqSim;

    fn core() -> Netlist {
        let mut mb = ModuleBuilder::new("core");
        let a = mb.input_bus("a", 4);
        let q = mb.register(&a);
        let s = mb.add_mod(&q, &a);
        mb.output_bus("s", &s);
        mb.finish().unwrap()
    }

    #[test]
    fn wrapped_core_preserves_function_in_mission_mode() {
        let c = core();
        let w = wrap_core(&c).unwrap();
        let mut plain = SeqSim::new(&c).unwrap();
        let mut wrapped = SeqSim::new(&w).unwrap();
        // Mission mode: test off, no shifting.
        wrapped.drive_port("wrap_test", 0);
        wrapped.drive_port("wrap_shift", 0);
        wrapped.drive_port("wrap_capture", 0);
        wrapped.drive_port("wrap_update", 0);
        wrapped.drive_port("wsi", 0);
        for v in [3u64, 9, 15, 0, 7] {
            plain.drive_port("a", v);
            wrapped.drive_port("a", v);
            plain.step();
            wrapped.step();
            plain.eval_comb();
            wrapped.eval_comb();
            assert_eq!(
                plain.read_port_lane("s", 0),
                wrapped.read_port_lane("s", 0),
                "input {v}"
            );
        }
    }

    #[test]
    fn boundary_chain_shifts_end_to_end() {
        let c = core();
        let w = wrap_core(&c).unwrap();
        let mut sim = SeqSim::new(&w).unwrap();
        sim.drive_port("wrap_test", 1);
        sim.drive_port("wrap_shift", 1);
        sim.drive_port("wrap_capture", 0);
        sim.drive_port("wrap_update", 0);
        sim.drive_port("a", 0);
        // Chain: 3 WIR + 4 input cells + 4 output cells = 11 stages.
        sim.drive_port("wsi", 1);
        for _ in 0..11 {
            sim.eval_comb();
            sim.step();
        }
        sim.eval_comb();
        assert_eq!(sim.read_port_lane("wso", 0), Some(1));
    }

    #[test]
    fn wrapper_adds_flops() {
        let c = core();
        let w = wrap_core(&c).unwrap();
        // 4 inputs × 2 FF + 4 outputs × 1 FF + 6 WIR FF on top of the core.
        assert_eq!(w.dff_count(), c.dff_count() + 4 * 2 + 4 + 6);
    }
}
