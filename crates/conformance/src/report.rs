//! Mismatch reports, netlist dump/replay, and the greedy minimizer.
//!
//! Reports are hand-rendered JSON (no external dependencies, same policy
//! as the bench harness); failing netlists are dumped in a line-oriented
//! text format that [`parse_netlist`] reads back for `difftest --replay`.

use std::fmt::Write as _;

use soctest_netlist::{GateKind, NetId, Netlist, PortDir};

/// One observed divergence between two engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Engine pair that diverged (one of [`crate::PAIR_NAMES`]).
    pub pair: &'static str,
    /// The seed whose draw exposed it.
    pub seed: u64,
    /// Human-readable description of the first divergence.
    pub detail: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the `--report-on-failure` HTML triage page: one self-contained
/// document with the run parameters and every mismatch grouped per engine
/// pair, built on the obs report toolkit so it obeys the same
/// no-external-reference guarantee as the campaign cockpit.
pub fn render_html_report(
    seeds: u64,
    max_gates: usize,
    mismatches: &[Mismatch],
    dump_file: Option<&str>,
) -> String {
    use soctest_obs::report as html;

    let mut doc = soctest_obs::HtmlReport::new("Conformance mismatch report");
    doc.set_subtitle(&format!("{seeds} seeds × ≤{max_gates} gates per netlist"));
    let pairs: Vec<&str> = {
        let mut p: Vec<&str> = mismatches.iter().map(|m| m.pair).collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    doc.add_section(
        "Overview",
        html::stat_tiles(&[
            ("mismatches".into(), mismatches.len().to_string()),
            ("engine pairs hit".into(), pairs.len().to_string()),
            (
                "minimized dump".into(),
                dump_file.unwrap_or("none").to_owned(),
            ),
        ]),
    );
    for pair in pairs {
        let rows: Vec<Vec<String>> = mismatches
            .iter()
            .filter(|m| m.pair == pair)
            .map(|m| vec![m.seed.to_string(), m.detail.clone()])
            .collect();
        doc.add_section(
            &format!("Pair: {pair}"),
            html::table(&["seed", "first divergence"], &rows),
        );
    }
    if let Some(f) = dump_file {
        doc.add_section(
            "Replay",
            html::paragraph(&format!(
                "The first sim-pair failure was minimized to {f}; \
                 rerun it with difftest --replay {f}."
            )),
        );
    }
    doc.render()
}

/// Renders a machine-readable report for one `difftest` run.
pub fn render_report(
    seeds: u64,
    max_gates: usize,
    checked: &[(&'static str, u64)],
    mismatches: &[Mismatch],
    dump_file: Option<&str>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"seeds\": {seeds},");
    let _ = writeln!(s, "  \"max_gates\": {max_gates},");
    s.push_str("  \"pairs\": {");
    for (i, (name, runs)) in checked.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{name}\": {runs}");
    }
    s.push_str("},\n");
    let _ = writeln!(s, "  \"mismatch_count\": {},", mismatches.len());
    s.push_str("  \"mismatches\": [\n");
    for (i, m) in mismatches.iter().enumerate() {
        let comma = if i + 1 < mismatches.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"pair\": \"{}\", \"seed\": {}, \"detail\": \"{}\"}}{comma}",
            m.pair,
            m.seed,
            json_escape(&m.detail)
        );
    }
    s.push_str("  ],\n");
    match dump_file {
        Some(f) => {
            let _ = writeln!(s, "  \"minimized_netlist\": \"{}\"", json_escape(f));
        }
        None => s.push_str("  \"minimized_netlist\": null\n"),
    }
    s.push_str("}\n");
    s
}

/// Serializes `nl` into the replayable text dump format:
///
/// ```text
/// # soctest difftest netlist dump
/// name rand
/// gate in
/// gate and2 0 0
/// port input in 0
/// port output out 1
/// ```
///
/// Gate lines appear in net-id order (the id is implicit); pins and port
/// bits are net ids.
pub fn dump_netlist(nl: &Netlist) -> String {
    let mut s = String::from("# soctest difftest netlist dump\n");
    let _ = writeln!(s, "name {}", nl.name());
    for (_, gate) in nl.iter() {
        let _ = write!(s, "gate {}", gate.kind.mnemonic());
        for pin in &gate.pins {
            let _ = write!(s, " {}", pin.0);
        }
        s.push('\n');
    }
    for port in nl.ports() {
        let dir = match port.dir() {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        let _ = write!(s, "port {dir} {}", port.name());
        for bit in port.bits() {
            let _ = write!(s, " {}", bit.0);
        }
        s.push('\n');
    }
    s
}

fn kind_from_mnemonic(m: &str) -> Option<GateKind> {
    GateKind::ALL.into_iter().find(|k| k.mnemonic() == m)
}

/// Parses a [`dump_netlist`] dump back into a netlist.
///
/// # Errors
///
/// Returns a description of the first malformed line, unknown mnemonic,
/// or validation failure.
pub fn parse_netlist(text: &str) -> Result<Netlist, String> {
    let mut nl = Netlist::new("replay");
    let mut ports: Vec<(PortDir, String, Vec<NetId>)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().unwrap_or_default();
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        match head {
            "name" => {
                let name = tok.next().ok_or_else(|| err("missing name"))?;
                nl = Netlist::new(name);
            }
            "gate" => {
                let mn = tok.next().ok_or_else(|| err("missing mnemonic"))?;
                let kind = kind_from_mnemonic(mn).ok_or_else(|| err("unknown gate kind"))?;
                let pins = tok
                    .map(|t| t.parse::<u32>().map(NetId))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| err("bad pin id"))?;
                if pins.len() != kind.arity() {
                    return Err(err("pin count does not match gate arity"));
                }
                nl.add_gate_unchecked(kind, pins);
            }
            "port" => {
                let dir = match tok.next() {
                    Some("input") => PortDir::Input,
                    Some("output") => PortDir::Output,
                    _ => return Err(err("bad port direction")),
                };
                let name = tok.next().ok_or_else(|| err("missing port name"))?;
                let bits = tok
                    .map(|t| t.parse::<u32>().map(NetId))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| err("bad port bit id"))?;
                ports.push((dir, name.to_owned(), bits));
            }
            _ => return Err(err("unknown directive")),
        }
    }
    for (dir, name, bits) in ports {
        nl.add_port(dir, &name, bits).map_err(|e| e.to_string())?;
    }
    nl.validate().map_err(|e| e.to_string())?;
    Ok(nl)
}

/// Greedy netlist minimizer: repeatedly forces non-input gates to
/// constant 0 while `failing` still reproduces the mismatch. The result
/// is 1-minimal with respect to that reduction (re-enabling any single
/// surviving gate is impossible without losing the failure).
pub fn minimize<F: FnMut(&Netlist) -> bool>(nl: &Netlist, mut failing: F) -> Netlist {
    let mut current = nl.clone();
    loop {
        let mut shrunk = false;
        for id in (0..current.len()).rev() {
            let net = NetId(id as u32);
            let kind = current.gate(net).kind;
            if matches!(kind, GateKind::Input | GateKind::Const0 | GateKind::Const1) {
                continue;
            }
            let mut trial = current.clone();
            trial.force_constant(net, false);
            if failing(&trial) {
                current = trial;
                shrunk = true;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Number of gates that still compute something (not Input/Const tie-offs).
pub fn active_gates(nl: &Netlist) -> usize {
    nl.iter()
        .filter(|(_, g)| {
            !matches!(
                g.kind,
                GateKind::Input | GateKind::Const0 | GateKind::Const1
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{random_netlist, GeneratorConfig};
    use soctest_prng::SplitMix64;

    #[test]
    fn html_report_is_self_contained_and_lists_every_mismatch() {
        let mismatches = vec![
            Mismatch {
                pair: "sim",
                seed: 7,
                detail: "output bit 3 diverged at pattern 12 <&>".into(),
            },
            Mismatch {
                pair: "fault",
                seed: 9,
                detail: "detection count 4 vs 5".into(),
            },
        ];
        let html = render_html_report(25, 120, &mismatches, Some("difftest_min_seed7.nl"));
        assert!(soctest_obs::report::is_self_contained(&html));
        assert!(html.contains("Pair: sim"));
        assert!(html.contains("Pair: fault"));
        assert!(html.contains("&lt;&amp;&gt;"), "details are escaped");
        assert!(html.contains("difftest_min_seed7.nl"));
    }

    #[test]
    fn dump_then_parse_roundtrips() {
        for seed in 0..20u64 {
            let mut rng = SplitMix64::new(seed);
            let cfg = GeneratorConfig::sample(&mut rng, 80);
            let nl = random_netlist(&mut rng, &cfg);
            let text = dump_netlist(&nl);
            let back = parse_netlist(&text).expect("replay parse");
            assert_eq!(back.len(), nl.len());
            assert_eq!(back.input_width(), nl.input_width());
            assert_eq!(back.output_width(), nl.output_width());
            for (id, gate) in nl.iter() {
                assert_eq!(back.gate(id).kind, gate.kind, "gate {id:?}");
                assert_eq!(back.gate(id).pins, gate.pins, "pins of {id:?}");
            }
            assert_eq!(text, dump_netlist(&back), "dump is canonical");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_netlist("gate frob 1 2").is_err());
        assert!(parse_netlist("gate and2 0").is_err());
        assert!(parse_netlist("wibble").is_err());
    }

    #[test]
    fn minimizer_shrinks_while_predicate_holds() {
        let mut rng = SplitMix64::new(42);
        let cfg = GeneratorConfig::sample(&mut rng, 80).comb();
        let nl = random_netlist(&mut rng, &cfg);
        let out0 = nl.primary_outputs()[0];
        // "Failing" = output 0 still structurally depends on... nothing:
        // keep any netlist whose output-0 driver is not a constant. The
        // minimizer must then kill everything else.
        let min = minimize(&nl, |cand| {
            !matches!(cand.gate(out0).kind, GateKind::Const0 | GateKind::Const1)
        });
        assert!(active_gates(&min) <= active_gates(&nl));
        assert!(active_gates(&min) <= 2, "only the protected driver stays");
    }

    #[test]
    fn report_is_plausible_json() {
        let r = render_report(
            5,
            80,
            &[("sim", 5)],
            &[Mismatch {
                pair: "sim",
                seed: 3,
                detail: "lane 0 \"quote\"".into(),
            }],
            Some("min.nl"),
        );
        assert!(r.contains("\"mismatch_count\": 1"));
        assert!(r.contains("\\\"quote\\\""));
        assert!(r.starts_with('{') && r.trim_end().ends_with('}'));
    }
}
