//! Technology library, area reporting, and static timing analysis.
//!
//! Stands in for the commercial synthesis reporting the paper uses
//! (Synopsys Design Analyzer on an industrial 0.13 µm library): every
//! primitive gate gets an area in µm² and a pin-to-pin delay in ps, area is
//! additive (Table 2), and the maximum frequency is the reciprocal of the
//! worst register-to-register/boundary path (Table 4). Absolute numbers are
//! a calibrated stand-in; *relative* overheads — which is what the paper's
//! tables argue about — carry over.
//!
//! # Example
//!
//! ```
//! use soctest_netlist::ModuleBuilder;
//! use soctest_tech::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("m");
//! let a = mb.input_bus("a", 8);
//! let q = mb.register(&a);
//! let s = mb.add_mod(&q, &a);
//! mb.output_bus("s", &s);
//! let nl = mb.finish()?;
//!
//! let lib = Library::cmos_130nm();
//! let area = lib.area(&nl);
//! let timing = lib.timing(&nl)?;
//! assert!(area.total_um2 > 0.0);
//! assert!(timing.fmax_mhz > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod library;
mod sta;

pub use area::AreaReport;
pub use library::{CellSpec, Library};
pub use sta::{PathEnd, TimingReport};
