//! Fault-injection integration tests: the robustness machinery against
//! the three failure classes it was built for — a defective module, a
//! noisy status path, and a hung engine.

use soctest::bist::EngineError;
use soctest::core::autopilot::{Autopilot, AutopilotConfig, Verdict};
use soctest::core::casestudy::CaseStudy;
use soctest::core::robust::{RetryStrategy, RobustSession, SessionBudget};
use soctest::core::session::WrappedCore;
use soctest::core::SessionError;
use soctest::p1500::{
    FaultyBackend, PinFault, PinFaults, ProtocolError, TapDriver, WrapperInstruction,
};

/// Scenario 1: a stuck-at defect in one module. The retry ladder must not
/// talk itself out of a real fault — the mismatch reproduces under every
/// polynomial and seed, and exactly that module is quarantined.
#[test]
fn stuck_at_defect_quarantines_exactly_that_module() {
    let reference = CaseStudy::paper().unwrap();
    let mut dut = CaseStudy::paper().unwrap();
    // Plant the defect: BIT_NODE's first output net stuck at 1.
    let victim = dut.modules()[0].primary_outputs()[0];
    dut.module_mut(0).force_constant(victim, true);

    let report = RobustSession::default().run(&reference, &dut, 96).unwrap();

    assert!(!report.all_passed());
    assert_eq!(report.quarantined(), vec!["BIT_NODE"]);
    // The defective module exhausted the whole ladder without a match.
    let bad = &report.outcomes[0];
    assert_eq!(bad.attempts.len(), 3, "full retry ladder");
    assert!(bad.attempts.iter().all(|a| !a.matched()));
    assert_eq!(bad.attempts[0].strategy, RetryStrategy::Rerun);
    assert_eq!(
        bad.attempts[1].strategy,
        RetryStrategy::ReciprocalPolynomial
    );
    assert!(matches!(bad.attempts[2].strategy, RetryStrategy::Reseed(_)));
    // The healthy modules passed on the first rung.
    for outcome in &report.outcomes[1..] {
        assert!(!outcome.quarantined, "{} must pass", outcome.module);
        assert_eq!(outcome.attempts.len(), 1);
        assert!(outcome.attempts[0].matched());
    }
}

/// Scenario 1b: the same defect stuck the other way is also caught.
#[test]
fn stuck_at_zero_is_also_caught() {
    let reference = CaseStudy::paper().unwrap();
    let mut dut = CaseStudy::paper().unwrap();
    let victim = dut.modules()[1].primary_outputs()[0];
    dut.module_mut(1).force_constant(victim, false);
    let report = RobustSession::default().run(&reference, &dut, 96).unwrap();
    assert_eq!(report.quarantined(), vec!["CHECK_NODE"]);
}

/// Scenario 2: a transient upset corrupts WDR scans. A single read would
/// report a bogus signature; the majority-voted read outvotes the upset
/// and the session recovers without quarantining anything.
#[test]
fn transient_wdr_corruption_is_outvoted() {
    // One poisoned read (signature XORed with 0xFF), then clean.
    let mut ate = TapDriver::new(FaultyBackend::new(16, 4).with_transient_reads(1, 0xFF));
    ate.reset();
    ate.bist_load_pattern_count(4);
    ate.bist_start();
    ate.run_functional(4);
    let (done, sig) = ate.read_status_voted(3).unwrap();
    assert!(done);
    assert_eq!(sig, ate.backend().expected_signature(), "upset outvoted");
}

/// Scenario 2b: when every read is corrupted differently there is no
/// majority, and the driver says so instead of guessing.
#[test]
fn unstable_status_path_yields_no_majority() {
    // TDO flips every third cycle; the flip pattern drifts across scans
    // (a scan is 22 cycles, not a multiple of 3), so the reads disagree.
    let mut ate = TapDriver::new(FaultyBackend::new(16, 2));
    ate.reset();
    ate.bist_load_pattern_count(2);
    ate.bist_start();
    ate.wait_for_done(2, 4).unwrap();
    ate.inject_pin_faults(PinFaults {
        tdo: Some(PinFault::FlipEvery(3)),
        ..PinFaults::none()
    });
    let err = ate.read_status_voted(4).unwrap_err();
    assert_eq!(err, ProtocolError::NoStatusMajority { votes: 4 });
}

/// Scenario 2c: corruption on the instruction path is caught by the WIR
/// readback before a misdecoded instruction selects the wrong register.
#[test]
fn wir_readback_guards_the_instruction_path() {
    let mut ate = TapDriver::new(FaultyBackend::new(16, 2));
    ate.reset();
    ate.inject_pin_faults(PinFaults {
        tdi: Some(PinFault::StuckAt(true)),
        ..PinFaults::none()
    });
    let err = ate
        .wrapper_instruction_verified(WrapperInstruction::CommandReg)
        .unwrap_err();
    assert!(matches!(err, ProtocolError::WirReadbackMismatch { .. }));
    // Clean pins: the verified load succeeds and the session proceeds.
    ate.clear_pin_faults();
    ate.reset();
    ate.wrapper_instruction_verified(WrapperInstruction::CommandReg)
        .unwrap();
}

/// Scenario 3: a hung engine. Both the behavioral rehearsal and the
/// TAP-driven session must report a typed hang, never loop forever or
/// return power-on signatures.
#[test]
fn hung_engine_is_a_typed_error_everywhere() {
    // Rehearsal path: a zero pattern count is ignored by the control unit,
    // so end_test never rises.
    let case = CaseStudy::paper().unwrap();
    let mut core = WrappedCore::new(&case).unwrap();
    match core.rehearse(0) {
        Err(SessionError::Engine(EngineError::Hung { .. })) => {}
        other => panic!("rehearse must hang with a typed error, got {other:?}"),
    }

    // TAP path: a backend whose end_test is stuck low times out with the
    // cycles spent, which the session layer reports as a hang.
    let mut ate = TapDriver::new(FaultyBackend::new(16, 2).with_hang());
    ate.reset();
    ate.bist_load_pattern_count(2);
    ate.bist_start();
    let err = ate.wait_for_done(8, 4).unwrap_err();
    assert_eq!(
        err,
        ProtocolError::DoneTimeout {
            cycles_waited: 32,
            bursts: 4
        }
    );

    // Robust-session path: the watchdog converts the stall into Hung.
    let reference = CaseStudy::paper().unwrap();
    let dut = CaseStudy::paper().unwrap();
    match RobustSession::default().run(&reference, &dut, 0) {
        Err(SessionError::Engine(EngineError::Hung { .. })) => {}
        other => panic!("robust session must report Hung, got {other:?}"),
    }
}

/// The TCK watchdog: a session that cannot fit its budget aborts with the
/// exact accounting instead of running open-loop.
#[test]
fn tck_watchdog_fires_with_accounting() {
    let reference = CaseStudy::paper().unwrap();
    let dut = CaseStudy::paper().unwrap();
    let session = RobustSession::new(SessionBudget {
        max_tck: 50,
        ..SessionBudget::default()
    });
    match session.run(&reference, &dut, 64) {
        Err(SessionError::TckBudgetExceeded { spent, budget: 50 }) => {
            assert!(spent > 50);
        }
        other => panic!("expected the TCK watchdog, got {other:?}"),
    }
}

/// Dropped TCK edges stall the protocol: the TAP never decodes the
/// instruction stream, which shows up as a done-timeout rather than a
/// silent wrong answer.
#[test]
fn dropped_clocks_surface_as_timeout() {
    let mut ate = TapDriver::new(FaultyBackend::new(16, 2));
    ate.inject_pin_faults(PinFaults {
        drop_tck_every: Some(2),
        ..PinFaults::none()
    });
    ate.reset();
    ate.bist_load_pattern_count(2);
    ate.bist_start();
    // Commands never arrive intact; the engine never starts.
    assert!(ate.wait_for_done(4, 4).is_err());
}

/// Scenario 4: the autopilot's decision trail is a pure function of the
/// netlist and the master seed. Two runs over fresh case-study instances
/// must produce byte-identical JSONL — this is what makes a trail
/// replayable evidence rather than a log.
#[test]
fn autopilot_decision_trail_is_seed_deterministic() {
    let config = AutopilotConfig {
        target_percent: 35.0,
        start_patterns: 96,
        max_patterns: 192,
        seed: 42,
        ..AutopilotConfig::default()
    };
    let run = || {
        let reference = CaseStudy::paper().unwrap();
        let dut = CaseStudy::paper().unwrap();
        Autopilot::new(config)
            .unwrap()
            .run(&reference, &dut)
            .unwrap()
    };
    let first = run();
    let second = run();

    assert!(!first.trail_jsonl.is_empty());
    assert_eq!(
        first.trail_jsonl, second.trail_jsonl,
        "same netlist + same seed must replay to the same bytes"
    );
    assert_eq!(first.verdicts(), second.verdicts());
    assert_eq!(first.sim_patterns, second.sim_patterns);

    // A different master seed still terminates, but walks its own trail.
    let reference = CaseStudy::paper().unwrap();
    let dut = CaseStudy::paper().unwrap();
    let other = Autopilot::new(AutopilotConfig { seed: 43, ..config })
        .unwrap()
        .run(&reference, &dut)
        .unwrap();
    assert_ne!(first.trail_jsonl, other.trail_jsonl);
}

/// Scenario 5: a hung engine under the autopilot. The pre-flight screen
/// must catch the stuck module and quarantine it while the loop carries
/// the healthy modules to the target — degraded, never deadlocked.
#[test]
fn autopilot_quarantines_a_hung_module_and_converges_the_rest() {
    let reference = CaseStudy::paper().unwrap();
    let dut = CaseStudy::paper().unwrap();
    let report = Autopilot::new(AutopilotConfig {
        target_percent: 35.0,
        start_patterns: 96,
        max_patterns: 192,
        seed: 42,
        ..AutopilotConfig::default()
    })
    .unwrap()
    .with_injected_hang(2)
    .run(&reference, &dut)
    .unwrap();

    let verdicts = report.verdicts();
    assert_eq!(verdicts.len(), 3);
    assert_eq!(verdicts[2], ("CONTROL_UNIT", Verdict::Quarantined));
    // The hung module never reached the coverage loop...
    assert!(report.modules[2].rounds.is_empty());
    // ...while the others converged on target as if it were not there.
    for (name, verdict) in &verdicts[..2] {
        assert_eq!(*verdict, Verdict::Converged, "{name} must still converge");
    }
    for m in &report.modules[..2] {
        assert!(m.final_percent >= 35.0);
    }
    // The trail records the quarantine as a first-class verdict.
    assert!(report.trail_jsonl.contains("\"verdict\":\"Quarantined\""));
    // Degraded-mode success: every module the screen cleared converged.
    assert!(report.all_converged());
}
