//! Streaming coverage curves: first-detection indices turned into a
//! cumulative coverage-vs-patterns trajectory.
//!
//! A [`CoverageCurve`] is built *after* a fault-simulation campaign from the
//! per-fault first-detection indices the simulator already records, so curve
//! recording adds zero work to the simulation hot path. Because detection
//! indices are absolute pattern numbers (also across resumed
//! `CombCampaign` batches), a curve built from a resumed campaign is
//! identical to one built from a single batch, and a curve built from a
//! parallel run is bit-identical to the serial one.

use crate::metrics::MetricsRegistry;

/// Cumulative fault-coverage trajectory with per-pattern resolution.
///
/// Stored as a compressed step function: one `(cycle, cumulative_detected)`
/// point per pattern index at which at least one new fault was first
/// detected, strictly increasing in both coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageCurve {
    faults: usize,
    cycles: u64,
    steps: Vec<(u64, u64)>,
}

impl CoverageCurve {
    /// Builds a curve from per-fault first-detection indices (`None` =
    /// undetected) and the number of patterns/cycles applied.
    pub fn from_detection(detection: &[Option<u64>], cycles: u64) -> Self {
        let mut firsts: Vec<u64> = detection.iter().flatten().copied().collect();
        firsts.sort_unstable();
        let mut steps: Vec<(u64, u64)> = Vec::new();
        for (i, d) in firsts.iter().enumerate() {
            match steps.last_mut() {
                Some((c, n)) if c == d => *n = i as u64 + 1,
                _ => steps.push((*d, i as u64 + 1)),
            }
        }
        CoverageCurve {
            faults: detection.len(),
            cycles,
            steps,
        }
    }

    /// Total faults in the campaign's universe.
    pub fn faults(&self) -> usize {
        self.faults
    }

    /// Patterns (or cycles) applied by the campaign.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Faults detected by the end of the campaign.
    pub fn detected(&self) -> usize {
        self.steps.last().map(|&(_, n)| n as usize).unwrap_or(0)
    }

    /// The step points `(cycle, cumulative_detected)`, strictly increasing
    /// in both coordinates.
    pub fn steps(&self) -> &[(u64, u64)] {
        &self.steps
    }

    /// Faults detected at or before `cycle`.
    pub fn detected_at(&self, cycle: u64) -> usize {
        let k = self.steps.partition_point(|&(c, _)| c <= cycle);
        if k == 0 {
            0
        } else {
            self.steps[k - 1].1 as usize
        }
    }

    /// Coverage percent at or before `cycle`.
    pub fn percent_at(&self, cycle: u64) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        100.0 * self.detected_at(cycle) as f64 / self.faults as f64
    }

    /// Final coverage percent. Computed with the same arithmetic as
    /// `FaultSimResult::coverage_percent`, so for a curve built from a
    /// result the two are equal as `f64` bit patterns.
    pub fn final_percent(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        100.0 * self.detected() as f64 / self.faults as f64
    }

    /// The smallest number of patterns that reaches `percent` coverage,
    /// or `None` if the campaign never got there. A detection at pattern
    /// index `d` needs `d + 1` applied patterns.
    pub fn patterns_to_percent(&self, percent: f64) -> Option<u64> {
        if self.faults == 0 {
            return None;
        }
        self.steps
            .iter()
            .find(|&&(_, n)| 100.0 * n as f64 / self.faults as f64 >= percent)
            .map(|&(c, _)| c + 1)
    }

    /// Patterns needed to reach the campaign's final coverage — the test
    /// length that was actually useful. `None` when nothing was detected.
    pub fn patterns_to_final(&self) -> Option<u64> {
        self.steps.last().map(|&(c, _)| c + 1)
    }

    /// Flatness of the curve's tail: the fraction of the final coverage
    /// that was already reached before the last quarter of the applied
    /// patterns. `1.0` means a perfectly flat tail (no detection landed in
    /// the last quarter — more patterns of the same kind won't help);
    /// `0.0` means every detection landed there (the curve is still
    /// climbing). A curve with no detections reads as flat (`1.0`).
    pub fn tail_flatness(&self) -> f64 {
        let detected = self.detected();
        if detected == 0 {
            return 1.0;
        }
        let tail_len = (self.cycles / 4).max(1);
        let tail_start = self.cycles.saturating_sub(tail_len);
        let before_tail = self
            .steps
            .iter()
            .take_while(|&&(c, _)| c < tail_start)
            .last()
            .map(|&(_, n)| n)
            .unwrap_or(0);
        before_tail as f64 / detected as f64
    }

    /// Condenses the curve into the scalar summary the bench trajectory
    /// and the report's stat tiles track.
    pub fn summary(&self) -> CurveSummary {
        let milestones = MILESTONE_LADDER
            .iter()
            .filter_map(|&t| self.patterns_to_percent(t as f64).map(|p| (t, p)))
            .collect();
        CurveSummary {
            faults: self.faults,
            detected: self.detected(),
            cycles: self.cycles,
            final_percent: self.final_percent(),
            patterns_to_90: self.patterns_to_percent(90.0),
            patterns_to_final: self.patterns_to_final(),
            tail_flatness: self.tail_flatness(),
            milestones,
        }
    }

    /// At most `max_points` evenly spaced `(cycle, percent)` samples for
    /// plotting, always including the first and last step. The full step
    /// list is preserved when it already fits.
    pub fn sampled_percent(&self, max_points: usize) -> Vec<(u64, f64)> {
        if self.faults == 0 || self.steps.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let pct = |n: u64| 100.0 * n as f64 / self.faults as f64;
        if self.steps.len() <= max_points {
            return self.steps.iter().map(|&(c, n)| (c, pct(n))).collect();
        }
        let last = self.steps.len() - 1;
        let mut out = Vec::with_capacity(max_points);
        for i in 0..max_points {
            let idx = i * last / (max_points - 1).max(1);
            let (c, n) = self.steps[idx];
            if out.last().map(|&(pc, _)| pc) != Some(c) {
                out.push((c, pct(n)));
            }
        }
        out
    }

    /// Serializes the curve as a self-describing JSON object.
    pub fn to_json(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"label\":\"{}\",\"faults\":{},\"detected\":{},\"cycles\":{},\"final_percent\":{},\"steps\":[",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.faults,
            self.detected(),
            self.cycles,
            self.final_percent(),
        );
        for (i, &(c, n)) in self.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{c},{n}]");
        }
        s.push_str("]}");
        s
    }

    /// Exports the curve into the unified metrics registry: every
    /// first-detection index is observed into a log₂-bucketed histogram
    /// `{prefix}_first_detection`, plus final coverage and test-length
    /// gauges. `prefix` should be a Prometheus-safe identifier.
    pub fn export_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        let mut prev = 0u64;
        for &(c, n) in &self.steps {
            for _ in prev..n {
                registry.observe(&format!("{prefix}_first_detection"), c);
            }
            prev = n;
        }
        registry.set_gauge(&format!("{prefix}_final_percent"), self.final_percent());
        registry.set_gauge(&format!("{prefix}_faults"), self.faults as f64);
        registry.set_gauge(&format!("{prefix}_cycles"), self.cycles as f64);
        if let Some(p) = self.patterns_to_final() {
            registry.set_gauge(&format!("{prefix}_patterns_to_final"), p as f64);
        }
    }
}

/// The coverage thresholds (percent) tracked as milestones in every
/// [`CurveSummary`]. Only the thresholds a campaign actually reached are
/// stored, so the last entry is the curve's *knee* — the highest ladder
/// rung the campaign climbed to.
pub const MILESTONE_LADDER: [u64; 7] = [10, 25, 50, 75, 90, 95, 99];

/// Scalar summary of one coverage curve: the test-length-efficiency
/// numbers the bench trajectory tracks next to wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSummary {
    /// Total faults in the universe.
    pub faults: usize,
    /// Faults detected.
    pub detected: usize,
    /// Patterns applied.
    pub cycles: u64,
    /// Final coverage percent.
    pub final_percent: f64,
    /// Patterns needed to reach 90% coverage, if it was reached.
    pub patterns_to_90: Option<u64>,
    /// Patterns needed to reach the final coverage.
    pub patterns_to_final: Option<u64>,
    /// Tail flatness in `[0, 1]` (see [`CoverageCurve::tail_flatness`]).
    pub tail_flatness: f64,
    /// Reached `(threshold_percent, patterns)` milestones from
    /// [`MILESTONE_LADDER`], in ascending threshold order.
    pub milestones: Vec<(u64, u64)>,
}

impl CurveSummary {
    /// Patterns needed to reach `percent` coverage, answered from the
    /// milestone ladder: the smallest reached threshold ≥ `percent`, or —
    /// when the campaign never got that far — the *knee*, the highest
    /// threshold actually reached. `None` only when nothing was detected
    /// past the lowest rung. The returned pair is
    /// `(threshold_percent, patterns)`, so a below-target curve reports an
    /// informative rung instead of `null`.
    pub fn patterns_to(&self, percent: u64) -> Option<(u64, u64)> {
        self.milestones
            .iter()
            .find(|&&(t, _)| t >= percent)
            .or_else(|| self.milestones.last())
            .copied()
    }

    /// Serializes the summary as a JSON object (`null` for unreached
    /// milestones).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let opt = |o: Option<u64>| o.map(|v| v.to_string()).unwrap_or_else(|| "null".into());
        let mut s = format!(
            "{{\"faults\":{},\"detected\":{},\"cycles\":{},\"final_percent\":{},\"patterns_to_90\":{},\"patterns_to_final\":{},\"tail_flatness\":{:.4},\"milestones\":[",
            self.faults,
            self.detected,
            self.cycles,
            self.final_percent,
            opt(self.patterns_to_90),
            opt(self.patterns_to_final),
            self.tail_flatness,
        );
        for (i, &(t, p)) in self.milestones.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{t},{p}]");
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_compressed_steps() {
        let det = [Some(3), None, Some(10), Some(3)];
        let c = CoverageCurve::from_detection(&det, 16);
        assert_eq!(c.faults(), 4);
        assert_eq!(c.detected(), 3);
        assert_eq!(c.steps(), &[(3, 2), (10, 3)]);
        assert_eq!(c.detected_at(2), 0);
        assert_eq!(c.detected_at(3), 2);
        assert_eq!(c.detected_at(9), 2);
        assert_eq!(c.detected_at(16), 3);
        assert!((c.final_percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn patterns_to_milestones() {
        let det = [Some(0), Some(1), Some(1), Some(7), Some(9), None];
        let c = CoverageCurve::from_detection(&det, 20);
        // 90% of 6 faults needs 6 detections — never reached.
        assert_eq!(c.patterns_to_percent(90.0), None);
        // 50% needs 3 detections: reached at index 1 → 2 patterns.
        assert_eq!(c.patterns_to_percent(50.0), Some(2));
        assert_eq!(c.patterns_to_final(), Some(10));
    }

    #[test]
    fn tail_flatness_extremes() {
        // All detections early → flat tail.
        let early = CoverageCurve::from_detection(&[Some(0), Some(1)], 100);
        assert!((early.tail_flatness() - 1.0).abs() < 1e-12);
        // All detections in the last quarter → still climbing.
        let late = CoverageCurve::from_detection(&[Some(98), Some(99)], 100);
        assert_eq!(late.tail_flatness(), 0.0);
        // No detections at all reads as flat.
        let none = CoverageCurve::from_detection(&[None, None], 100);
        assert_eq!(none.tail_flatness(), 1.0);
    }

    #[test]
    fn empty_curve_is_benign() {
        let c = CoverageCurve::from_detection(&[], 0);
        assert_eq!(c.detected(), 0);
        assert_eq!(c.final_percent(), 0.0);
        assert_eq!(c.patterns_to_percent(90.0), None);
        assert_eq!(c.patterns_to_final(), None);
        assert!(c.sampled_percent(10).is_empty());
        assert!(c.to_json("x").contains("\"faults\":0"));
    }

    #[test]
    fn sampling_keeps_endpoints() {
        let det: Vec<Option<u64>> = (0..1000).map(|i| Some(i as u64)).collect();
        let c = CoverageCurve::from_detection(&det, 1000);
        let s = c.sampled_percent(64);
        assert!(s.len() <= 64);
        assert_eq!(s.first().map(|&(c, _)| c), Some(0));
        assert_eq!(s.last().map(|&(c, _)| c), Some(999));
        // Percent samples are monotonically nondecreasing.
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn metrics_export_observes_every_detection() {
        let det = [Some(1), Some(1), Some(6), None];
        let c = CoverageCurve::from_detection(&det, 8);
        let reg = MetricsRegistry::new();
        c.export_metrics(&reg, "cov");
        let snap = reg.snapshot();
        let prom = snap.to_prometheus();
        assert!(prom.contains("cov_first_detection_count 3"));
        assert!(prom.contains("cov_final_percent 75"));
    }

    #[test]
    fn summary_round_trips_to_json() {
        let det = [Some(0), Some(2), Some(2), Some(3)];
        let s = CoverageCurve::from_detection(&det, 4).summary();
        assert_eq!(s.detected, 4);
        assert_eq!(s.patterns_to_90, Some(4));
        assert_eq!(s.patterns_to_final, Some(4));
        let j = s.to_json();
        assert!(j.contains("\"patterns_to_90\":4"), "{j}");
        assert!(j.contains("\"final_percent\":100"), "{j}");
        assert!(j.contains("\"milestones\":[[10,1]"), "{j}");
    }

    #[test]
    fn patterns_to_reports_the_knee_below_target() {
        // 8 faults, 4 detected → final coverage 50%: the ladder reaches
        // exactly the 10/25/50 rungs.
        let det = [Some(0), Some(5), Some(5), Some(11), None, None, None, None];
        let s = CoverageCurve::from_detection(&det, 16).summary();
        assert_eq!(
            s.milestones,
            vec![(10, 1), (25, 6), (50, 12)],
            "only reached rungs are stored"
        );
        // At or below the knee: the smallest rung covering the request.
        assert_eq!(s.patterns_to(25), Some((25, 6)));
        assert_eq!(s.patterns_to(40), Some((50, 12)));
        // Above the knee: report the knee itself instead of null.
        assert_eq!(s.patterns_to(90), Some((50, 12)));
        // A curve with no detections has no rungs at all.
        let empty = CoverageCurve::from_detection(&[None, None], 4).summary();
        assert!(empty.milestones.is_empty());
        assert_eq!(empty.patterns_to(90), None);
    }
}
