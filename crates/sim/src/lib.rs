//! Bit-parallel logic simulation for `soctest` netlists.
//!
//! The simulators here evaluate 64 independent "lanes" per pass: each net is
//! represented by a `u64` whose bit *i* is the net's value in lane *i*.
//! Lanes are used two ways across the workspace:
//!
//! * **64 patterns at once** for combinational circuits (ATPG fault
//!   simulation, signature checks), via [`CombSim`];
//! * **64 machines at once** for sequential circuits (the parallel-fault
//!   simulator in `soctest-fault` runs the good machine and 63 faulty
//!   machines on the same per-cycle stimulus), via [`SeqSim`].
//!
//! [`ToggleMonitor`] implements the toggle-activity metric of the paper's
//! step-1 evaluation loop (Fig. 3): the percentage of nets that were driven
//! both to 0 and to 1 by the applied patterns.
//!
//! # Example
//!
//! ```
//! use soctest_netlist::ModuleBuilder;
//! use soctest_sim::SeqSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("cnt");
//! let en = mb.input("en");
//! let clr = mb.input("clr");
//! let q = mb.counter(4, en, clr);
//! mb.output_bus("q", &q);
//! let nl = mb.finish()?;
//!
//! let mut sim = SeqSim::new(&nl)?;
//! sim.set_input_bit(nl.port("en").unwrap().bits()[0], true);
//! sim.set_input_bit(nl.port("clr").unwrap().bits()[0], false);
//! for _ in 0..5 {
//!     sim.step();
//! }
//! assert_eq!(sim.read_port_lane("q", 0), Some(5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comb;
mod kernel;
mod seq;
mod toggle;
mod vcd;

pub use comb::CombSim;
pub use kernel::KernelSim;
pub use seq::SeqSim;
pub use toggle::{ToggleMonitor, ToggleReport};
pub use vcd::VcdProbe;

/// Broadcasts a boolean to a full 64-lane word.
#[inline]
pub fn broadcast(bit: bool) -> u64 {
    if bit {
        u64::MAX
    } else {
        0
    }
}

/// Packs up to 64 booleans into a lane word (element *i* goes to bit *i*).
///
/// # Panics
///
/// Panics if more than 64 booleans are supplied.
pub fn pack_lanes(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "at most 64 lanes per word");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_and_pack() {
        assert_eq!(broadcast(true), u64::MAX);
        assert_eq!(broadcast(false), 0);
        assert_eq!(pack_lanes(&[true, false, true]), 0b101);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn pack_rejects_overwide() {
        let bits = vec![false; 65];
        let _ = pack_lanes(&bits);
    }
}
