//! The ATE model: a high-level driver that operates the TAP pins.

use soctest_bist::BistCommand;
use soctest_obs::{MetricsHandle, TraceEvent, TraceHandle};

use crate::{
    BistBackend, PinFaults, ProtocolError, TapController, TapInstruction, WaitStats, Wrapper,
    WrapperInstruction,
};

/// Drives a [`TapController`] the way an external tester would: composing
/// TMS/TDI sequences for instruction and data scans, issuing BIST commands
/// through the wrapper's WCDR, and reading status/signatures through the
/// WDR. Every operation pays its true cost in TCK cycles, which the driver
/// counts — this is where the protocol-level test-time numbers come from.
///
/// A [`PinFaults`] interposer can be armed between the ATE and the TAP to
/// model boundary-level defects (stuck/flipped TMS/TDI/TDO, dropped TCK
/// edges); see [`TapDriver::inject_pin_faults`].
#[derive(Debug, Clone)]
pub struct TapDriver<B> {
    tap: TapController<B>,
    functional_cycles: u64,
    pin_faults: PinFaults,
    pin_cycle: u64,
    trace: TraceHandle,
    metrics: MetricsHandle,
}

impl<B: BistBackend> TapDriver<B> {
    /// Wraps a backend in a P1500 wrapper, attaches a TAP, and the driver.
    pub fn new(backend: B) -> Self {
        TapDriver {
            tap: TapController::new(backend),
            functional_cycles: 0,
            pin_faults: PinFaults::none(),
            pin_cycle: 0,
            trace: TraceHandle::none(),
            metrics: MetricsHandle::none(),
        }
    }

    /// Attaches a trace handle; every TAP state edge, IR/WIR load, BIST
    /// command, and WDR capture is emitted through it from now on. The
    /// default handle is disabled (one null check per event site).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Attaches a metrics handle; TCK cycles, scans, and commands are
    /// counted through it from now on.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// The attached trace handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The attached metrics handle (disabled by default).
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The TAP (and through it the wrapper and backend).
    pub fn tap(&self) -> &TapController<B> {
        &self.tap
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        self.tap.wrapper().backend()
    }

    /// Mutable backend access (for co-simulation hookups).
    pub fn backend_mut(&mut self) -> &mut B {
        self.tap.wrapper_mut().backend_mut()
    }

    /// TCK cycles spent so far.
    pub fn tck(&self) -> u64 {
        self.tap.tck()
    }

    /// Functional (at-speed) cycles spent so far.
    pub fn functional_cycles(&self) -> u64 {
        self.functional_cycles
    }

    /// Arms a pin-fault interposer between the ATE and the TAP. Every
    /// subsequent TCK cycle passes through it until
    /// [`TapDriver::clear_pin_faults`].
    pub fn inject_pin_faults(&mut self, faults: PinFaults) {
        self.pin_faults = faults;
    }

    /// Removes the pin-fault interposer.
    pub fn clear_pin_faults(&mut self) {
        self.pin_faults = PinFaults::none();
    }

    /// The currently armed interposer.
    pub fn pin_faults(&self) -> PinFaults {
        self.pin_faults
    }

    /// One TCK cycle through the interposer.
    fn tick(&mut self, tms: bool, tdi: bool) -> bool {
        self.pin_cycle += 1;
        self.metrics.inc("tap_tck_cycles_total", 1);
        if self.pin_faults.drops_cycle(self.pin_cycle) {
            // The edge never reaches the TAP; the ATE reads a dead line.
            self.metrics.inc("tap_dropped_tck_edges_total", 1);
            return false;
        }
        let tms = self
            .pin_faults
            .tms
            .map_or(tms, |f| f.apply(tms, self.pin_cycle));
        let tdi = self
            .pin_faults
            .tdi
            .map_or(tdi, |f| f.apply(tdi, self.pin_cycle));
        let from = self.tap.state();
        let tdo = self.tap.tick(tms, tdi);
        let tdo = self
            .pin_faults
            .tdo
            .map_or(tdo, |f| f.apply(tdo, self.pin_cycle));
        self.trace.emit(
            self.tap.tck(),
            TraceEvent::TapStateChange {
                from: from.name(),
                to: self.tap.state().name(),
                tms,
                tdo,
            },
        );
        tdo
    }

    /// Hardware reset: five TMS-high cycles, then into Run-Test/Idle.
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.tick(true, false);
        }
        self.tick(false, false);
    }

    /// Loads a TAP instruction (assumes Run-Test/Idle; returns there).
    pub fn load_tap_ir(&mut self, instr: TapInstruction) {
        self.tick(true, false); // SelectDrScan
        self.tick(true, false); // SelectIrScan
        self.tick(false, false); // CaptureIr
        self.tick(false, false); // capture; -> ShiftIr
        let code = instr.encode();
        for i in 0..TapInstruction::LENGTH {
            let last = i == TapInstruction::LENGTH - 1;
            self.tick(last, (code >> i) & 1 == 1);
        }
        self.tick(true, false); // Exit1Ir -> UpdateIr
        self.tick(false, false); // update; -> RTI
        self.metrics.inc("tap_ir_loads_total", 1);
        self.trace.emit(
            self.tap.tck(),
            TraceEvent::TapIrLoad {
                instruction: self.tap.instruction().name(),
            },
        );
    }

    /// Performs a DR scan of `bits`, returning the bits shifted out.
    /// (Assumes Run-Test/Idle; returns there.)
    pub fn shift_dr(&mut self, bits: &[bool]) -> Vec<bool> {
        self.tick(true, false); // SelectDrScan
        self.tick(false, false); // -> CaptureDr
        self.tick(false, false); // capture; -> ShiftDr
        let mut out = Vec::with_capacity(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            let last = i == bits.len() - 1;
            out.push(self.tick(last, b));
        }
        self.tick(true, false); // Exit1Dr -> UpdateDr
        self.tick(false, false); // update; -> RTI
        self.metrics.inc("tap_dr_scans_total", 1);
        self.metrics.observe("tap_dr_scan_bits", bits.len() as u64);
        out
    }

    /// Loads a *wrapper* instruction through the WIR path, leaving the TAP
    /// pointed at the selected wrapper data register.
    pub fn wrapper_instruction(&mut self, wi: WrapperInstruction) {
        self.load_tap_ir(TapInstruction::WrapperInstr);
        let code = wi.encode();
        let bits: Vec<bool> = (0..WrapperInstruction::LENGTH)
            .map(|i| (code >> i) & 1 == 1)
            .collect();
        self.shift_dr(&bits);
        self.emit_wir_load(wi);
        self.load_tap_ir(TapInstruction::WrapperData);
    }

    fn emit_wir_load(&mut self, wi: WrapperInstruction) {
        self.metrics.inc("wir_loads_total", 1);
        self.trace.emit(
            self.tap.tck(),
            TraceEvent::WirLoad {
                instruction: wi.name(),
            },
        );
    }

    /// Like [`TapDriver::wrapper_instruction`], but re-scans the WIR after
    /// loading and checks that the bits shifted back out match the code
    /// shifted in — catching TDI/TDO corruption on the instruction path
    /// before a misdecoded instruction silently selects the wrong register.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::WirReadbackMismatch`] when the readback
    /// differs.
    pub fn wrapper_instruction_verified(
        &mut self,
        wi: WrapperInstruction,
    ) -> Result<(), ProtocolError> {
        self.load_tap_ir(TapInstruction::WrapperInstr);
        let code = wi.encode();
        let bits: Vec<bool> = (0..WrapperInstruction::LENGTH)
            .map(|i| (code >> i) & 1 == 1)
            .collect();
        self.shift_dr(&bits);
        // The WIR shift stage still holds what actually arrived; scanning
        // the same code in again streams it back out.
        let readback = self.shift_dr(&bits);
        let got = readback
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i));
        if got != code {
            self.metrics.inc("wir_readback_mismatches_total", 1);
            return Err(ProtocolError::WirReadbackMismatch {
                expected: code,
                got,
            });
        }
        self.emit_wir_load(wi);
        self.load_tap_ir(TapInstruction::WrapperData);
        Ok(())
    }

    /// Issues a BIST command through the WCDR (selects the command register
    /// if needed).
    pub fn bist_command(&mut self, cmd: BistCommand) {
        self.select_wrapper_dr(WrapperInstruction::CommandReg);
        let bits = Wrapper::<B>::encode_command(cmd);
        self.shift_dr(&bits);
        self.metrics.inc("bist_commands_total", 1);
        self.trace.emit(
            self.tap.tck(),
            TraceEvent::BistCommand {
                kind: cmd.name(),
                operand: cmd.operand(),
            },
        );
    }

    /// Makes sure DR scans reach the wrapper register `wi`: reloads the
    /// wrapper instruction when it differs, and re-points the TAP IR at
    /// `WrapperData` when an interleaved TAP operation (bypass scan,
    /// IDCODE read) moved it — otherwise the scan would shift into the
    /// TAP's own bypass bit and the wrapper would never see it.
    fn select_wrapper_dr(&mut self, wi: WrapperInstruction) {
        if self.tap.wrapper().instruction() != wi {
            self.wrapper_instruction(wi);
        } else if self.tap.instruction() != TapInstruction::WrapperData {
            self.load_tap_ir(TapInstruction::WrapperData);
        }
    }

    /// Loads the pattern count.
    pub fn bist_load_pattern_count(&mut self, n: u64) {
        self.bist_command(BistCommand::LoadPatternCount(n));
    }

    /// Starts the test.
    pub fn bist_start(&mut self) {
        self.bist_command(BistCommand::Start);
    }

    /// Selects which MISR the output selector exposes.
    pub fn bist_select_result(&mut self, idx: u8) {
        self.bist_command(BistCommand::SelectResult(idx));
    }

    /// Runs the core at functional speed for `cycles` clocks (the at-speed
    /// burst between TAP operations).
    pub fn run_functional(&mut self, cycles: u64) {
        self.functional_cycles += cycles;
        self.metrics.inc("functional_cycles_total", cycles);
        self.tap.wrapper_mut().run_functional(cycles);
    }

    /// Reads the WDR: returns `(end_test, selected signature)`.
    pub fn read_status(&mut self) -> (bool, u64) {
        self.select_wrapper_dr(WrapperInstruction::StatusReg);
        let n = self.tap.wrapper().wdr_length();
        let out = self.shift_dr(&vec![false; n]);
        let done = out[0];
        let sig = out[1..]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
        self.metrics.inc("wdr_captures_total", 1);
        self.trace.emit(
            self.tap.tck(),
            TraceEvent::WdrCapture {
                done,
                signature: sig,
            },
        );
        (done, sig)
    }

    /// Reads the WDR `votes` times and returns the majority `(end_test,
    /// signature)` value — each scan recaptures from the backend, so a
    /// transient upset on one read is outvoted by the clean re-reads.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NoStatusMajority`] when no value reaches a
    /// strict majority.
    pub fn read_status_voted(&mut self, votes: u32) -> Result<(bool, u64), ProtocolError> {
        let votes = votes.max(1);
        let reads: Vec<(bool, u64)> = (0..votes).map(|_| self.read_status()).collect();
        let mut best: Option<((bool, u64), u32)> = None;
        for &r in &reads {
            let count = reads.iter().filter(|&&x| x == r).count() as u32;
            if best.is_none_or(|(_, c)| count > c) {
                best = Some((r, count));
            }
        }
        match best {
            Some((value, count)) if count * 2 > votes => Ok(value),
            _ => Err(ProtocolError::NoStatusMajority { votes }),
        }
    }

    /// Polls the status register until `end_test`, running the core in
    /// bursts of `burst` functional cycles, up to `max_bursts` times.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::DoneTimeout`] with the cycles spent when
    /// the budget is exhausted before `end_test` rises — the caller can
    /// distinguish a slow test (raise the budget) from a hung engine.
    pub fn wait_for_done(
        &mut self,
        burst: u64,
        max_bursts: u32,
    ) -> Result<WaitStats, ProtocolError> {
        let mut cycles_waited = 0u64;
        for b in 0..max_bursts {
            let (done, _) = self.read_status();
            if done {
                return Ok(WaitStats {
                    cycles_waited,
                    bursts: b,
                });
            }
            self.run_functional(burst);
            cycles_waited += burst;
        }
        let (done, _) = self.read_status();
        if done {
            Ok(WaitStats {
                cycles_waited,
                bursts: max_bursts,
            })
        } else {
            Err(ProtocolError::DoneTimeout {
                cycles_waited,
                bursts: max_bursts,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultyBackend, MockBackend, PinFault};

    #[test]
    fn full_session_through_the_tap() {
        let mut drv = TapDriver::new(MockBackend::new(16, 100));
        drv.reset();
        drv.bist_load_pattern_count(100);
        drv.bist_start();
        let stats = drv.wait_for_done(40, 10).unwrap();
        assert_eq!(stats.bursts, 3, "3 bursts of 40");
        assert_eq!(stats.cycles_waited, 120);
        let (done, sig) = drv.read_status();
        assert!(done);
        assert_eq!(sig, drv.backend().expected_signature());
        assert_eq!(drv.functional_cycles(), 120, "3 bursts of 40");
    }

    #[test]
    fn tck_accounting_is_nonzero_and_monotonic() {
        let mut drv = TapDriver::new(MockBackend::new(8, 4));
        drv.reset();
        let t0 = drv.tck();
        drv.bist_load_pattern_count(4);
        let t1 = drv.tck();
        assert!(t1 > t0);
        drv.bist_start();
        drv.run_functional(4);
        let (done, _) = drv.read_status();
        assert!(done);
        assert!(drv.tck() > t1);
    }

    #[test]
    fn select_result_changes_signature_view() {
        let mut drv = TapDriver::new(MockBackend::new(16, 1));
        drv.reset();
        drv.bist_load_pattern_count(5);
        drv.bist_start();
        drv.run_functional(1);
        drv.bist_select_result(0);
        let (_, s0) = drv.read_status();
        drv.bist_select_result(1);
        let (_, s1) = drv.read_status();
        assert_ne!(s0, s1, "mock signature depends on the selection");
    }

    #[test]
    fn timeout_reports_cycles_spent() {
        let mut drv = TapDriver::new(FaultyBackend::new(8, 2).with_hang());
        drv.reset();
        drv.bist_load_pattern_count(2);
        drv.bist_start();
        assert_eq!(
            drv.wait_for_done(16, 4),
            Err(ProtocolError::DoneTimeout {
                cycles_waited: 64,
                bursts: 4
            })
        );
    }

    #[test]
    fn wir_readback_passes_on_a_clean_path() {
        let mut drv = TapDriver::new(MockBackend::new(8, 1));
        drv.reset();
        drv.wrapper_instruction_verified(WrapperInstruction::CommandReg)
            .unwrap();
        assert_eq!(
            drv.tap().wrapper().instruction(),
            WrapperInstruction::CommandReg
        );
    }

    #[test]
    fn stuck_tdi_is_caught_by_wir_readback() {
        let mut drv = TapDriver::new(MockBackend::new(8, 1));
        drv.reset();
        drv.inject_pin_faults(PinFaults {
            tdi: Some(PinFault::StuckAt(false)),
            ..PinFaults::none()
        });
        let err = drv
            .wrapper_instruction_verified(WrapperInstruction::StatusReg)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::WirReadbackMismatch { .. }));
    }

    #[test]
    fn voted_read_outlives_a_transient_upset() {
        let mut drv = TapDriver::new(FaultyBackend::new(16, 1).with_transient_reads(1, 0xFF));
        drv.reset();
        drv.bist_load_pattern_count(3);
        drv.bist_start();
        drv.run_functional(1);
        let (done, sig) = drv.read_status_voted(3).unwrap();
        assert!(done);
        assert_eq!(sig, drv.backend().expected_signature());
    }

    #[test]
    fn trace_captures_the_protocol_sequence() {
        use soctest_obs::{MemorySink, MetricsRegistry, TraceEvent, TraceHandle, Tracer};
        use std::sync::Arc;

        let mut drv = TapDriver::new(MockBackend::new(16, 8));
        let mut tracer = Tracer::default();
        let sink = MemorySink::new();
        let shared = sink.shared();
        tracer.add_sink(Box::new(sink));
        drv.set_trace(TraceHandle::new(tracer));
        let reg = Arc::new(MetricsRegistry::new());
        drv.set_metrics(soctest_obs::MetricsHandle::from_arc(Arc::clone(&reg)));

        drv.reset();
        drv.bist_load_pattern_count(8);
        drv.bist_start();
        drv.run_functional(8);
        let (done, _) = drv.read_status();
        assert!(done);

        let recs = shared.lock().unwrap();
        let names: Vec<&str> = recs.iter().map(|r| r.event.name()).collect();
        assert!(names.contains(&"TapStateChange"));
        assert!(names.contains(&"TapIrLoad"));
        assert!(names.contains(&"WirLoad"));
        assert!(names.contains(&"BistCommand"));
        assert!(names.contains(&"WdrCapture"));
        // Protocol order: the WIR load precedes the first BIST command,
        // which precedes the WDR capture.
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("WirLoad") < pos("BistCommand"));
        assert!(pos("BistCommand") < pos("WdrCapture"));
        // The LoadPatternCount command carries its operand.
        assert!(recs.iter().any(|r| matches!(
            r.event,
            TraceEvent::BistCommand {
                kind: "LoadPatternCount",
                operand: 8
            }
        )));
        // Cycle stamps are the driver's TCK counter: monotonic.
        let cycles: Vec<u64> = recs.iter().map(|r| r.cycle).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted);

        let snap = reg.snapshot();
        assert_eq!(snap.counters["tap_tck_cycles_total"], drv.tck());
        assert_eq!(snap.counters["functional_cycles_total"], 8);
        assert!(snap.counters["bist_commands_total"] >= 2);
        assert!(snap.histograms["tap_dr_scan_bits"].count >= 2);
    }

    #[test]
    fn dropped_clocks_stall_the_protocol() {
        let mut clean = TapDriver::new(MockBackend::new(8, 1));
        let mut dirty = TapDriver::new(MockBackend::new(8, 1));
        dirty.inject_pin_faults(PinFaults {
            drop_tck_every: Some(2),
            ..PinFaults::none()
        });
        clean.reset();
        dirty.reset();
        clean.load_tap_ir(TapInstruction::Idcode);
        dirty.load_tap_ir(TapInstruction::Idcode);
        assert_eq!(clean.tap().instruction(), TapInstruction::Idcode);
        assert_ne!(
            dirty.tap().instruction(),
            TapInstruction::Idcode,
            "half the edges never arrived"
        );
    }
}
