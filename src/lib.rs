//! `soctest` — a BIST + IEEE P1500 compliant core-test kit in Rust.
//!
//! Facade crate re-exporting the whole workspace. Reproduction of
//! *"Testing Logic Cores using a BIST P1500 Compliant Approach: A Case of
//! Study"* (Bernardi, Masera, Quaglio, Sonza Reorda — DATE 2004/05).
//!
//! Start with:
//!
//! * [`core::casestudy::CaseStudy`] — the wrapped LDPC decoder core;
//! * [`core::experiments`] — one function per table/figure of the paper;
//! * the `examples/` directory — runnable end-to-end scenarios;
//! * the `repro` binary (`cargo run --release -p soctest-bench --bin
//!   repro`) — regenerates every table and figure.
//!
//! # Quick taste
//!
//! ```
//! use soctest::core::casestudy::CaseStudy;
//! use soctest::core::session::WrappedCore;
//! use soctest::p1500::TapDriver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = CaseStudy::paper()?;
//! let mut ate = TapDriver::new(WrappedCore::new(&case)?);
//! ate.reset();
//! ate.bist_load_pattern_count(64);
//! ate.bist_start();
//! let stats = ate.wait_for_done(64, 4)?;
//! assert!(stats.cycles_waited >= 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soctest_atpg as atpg;
pub use soctest_bist as bist;
pub use soctest_conformance as conformance;
pub use soctest_core as core;
pub use soctest_fault as fault;
pub use soctest_ldpc as ldpc;
pub use soctest_netlist as netlist;
pub use soctest_obs as obs;
pub use soctest_p1500 as p1500;
pub use soctest_prng as prng;
pub use soctest_sim as sim;
pub use soctest_tech as tech;
