//! Gate-level netlist substrate for the `soctest` workspace.
//!
//! This crate provides the circuit representation every other crate builds
//! on: a flat, single-clock, single-driver gate graph ([`Netlist`]) together
//! with an "RTL-lite" construction layer ([`ModuleBuilder`]) offering
//! word-level operators (adders, comparators, muxes, registers, FSM helpers)
//! so that realistic datapath/control modules — such as the LDPC decoder
//! modules of the case study — can be *synthesized from code* instead of
//! parsed from proprietary RTL.
//!
//! # Model
//!
//! * Every gate drives exactly one net; [`NetId`] doubles as the gate index.
//! * Gates are primitive and of fixed arity (2-input AND/OR/..., 1-input
//!   NOT/BUF, 3-pin MUX2, 1-pin DFF). Wide reductions are built as trees by
//!   the builder, which keeps technology mapping, fault enumeration, and
//!   timing analysis trivial and uniform.
//! * Sequential elements are D flip-flops on an implicit common clock; their
//!   outputs act as combinational sources and their `d` pins as sinks, so
//!   [`Netlist::levelize`] yields a pure combinational order.
//!
//! # Example
//!
//! ```
//! use soctest_netlist::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("adder");
//! let a = mb.input_bus("a", 8);
//! let b = mb.input_bus("b", 8);
//! let sum = mb.add(&a, &b).sum;
//! mb.output_bus("sum", &sum);
//! let netlist = mb.finish().expect("acyclic");
//! assert_eq!(netlist.input_ports()[0].width(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod gate;
mod graph;
mod kernel;
mod stats;

pub use builder::{AddResult, FsmSpec, ModuleBuilder, Word};
pub use error::NetlistError;
pub use gate::{Gate, GateKind, NetId, PinIndex};
pub use graph::{Netlist, Port, PortDir};
pub use kernel::{compile, CompiledNetlist, ConeTable, LANE_WORDS};
pub use stats::NetlistStats;
