//! The paper's comparison argument in one runnable scenario: the same
//! module tested by BIST at speed versus full scan through the tester,
//! comparing coverage, test length in clock cycles, and test time at the
//! respective clock rates.
//!
//! ```text
//! cargo run --release --example scan_vs_bist
//! ```

use soctest::atpg::ScanAtpg;
use soctest::core::casestudy::CaseStudy;
use soctest::fault::{FaultUniverse, SeqFaultSim, SeqFaultSimConfig};
use soctest::tech::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = CaseStudy::paper()?;
    let module = &case.modules()[0]; // BIT_NODE
    let lib = Library::cmos_130nm();
    let patterns = 2048u64;

    // --- BIST: at-speed, one pattern per clock.
    let universe = FaultUniverse::stuck_at(module);
    let pgen = case.pattern_generator();
    let mut stim = pgen.stimulus(0, patterns);
    let bist = SeqFaultSim::new(&universe, SeqFaultSimConfig::default()).run(&mut stim)?;
    let core_mhz = lib.timing(&case.assemble(true)?)?.fmax_mhz;

    // --- Full scan: serial load/unload at the ATE clock.
    let scan = ScanAtpg::default().run(module)?;
    let ate_mhz = 100.0; // the paper's assumed tester frequency

    println!(
        "module: {} ({} gates, {} FFs)\n",
        module.name(),
        module.len(),
        module.dff_count()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>12}",
        "approach", "SAF cov", "cycles", "clock [MHz]", "time [µs]"
    );
    let bist_time = patterns as f64 / core_mhz;
    println!(
        "{:<22} {:>11.1}% {:>12} {:>14.1} {:>12.1}",
        "BIST (at speed)",
        bist.coverage_percent(),
        patterns,
        core_mhz,
        bist_time
    );
    let scan_cycles = scan.outcome.stuck_cycles;
    let scan_time = scan_cycles as f64 / ate_mhz;
    println!(
        "{:<22} {:>11.1}% {:>12} {:>14.1} {:>12.1}",
        "Full scan (on ATE)",
        scan.outcome.stuck_at.coverage_percent(),
        scan_cycles,
        ate_mhz,
        scan_time
    );
    println!(
        "\nscan needs {} cells in chains of ≤{}; every pattern pays a full\n\
         serial load — {}× more tester time despite similar coverage.",
        scan.design.cell_count(),
        scan.design.max_chain_length(),
        (scan_time / bist_time).round()
    );
    Ok(())
}
