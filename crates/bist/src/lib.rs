//! The BIST engine of the paper: ALFSR pattern generation, constraint
//! generators, MISR-based result collection, and the control unit — in both
//! *behavioral* form (fast models that drive the fault simulators) and
//! *structural* form (gate-level netlists for area, timing, and combined
//! core-plus-BIST evaluation).
//!
//! Structure mirrors §3.1 of the paper:
//!
//! * [`Alfsr`] — the autonomous LFSR producing pseudo-random patterns. One
//!   ALFSR is shared by all modules of the core.
//! * [`ConstraintGenerator`] / [`HoldCycler`] — custom circuitry driving
//!   *constrained* inputs (e.g. a 4-bit datapath selector that must hold a
//!   value for a stretch of cycles to exercise the selected path).
//! * [`PortWiring`] / [`PatternGenerator`] — the four architectural cases
//!   (a)–(d): ALFSR fits the port, ALFSR replicated over a wider port, and
//!   both variants combined with a constraint generator.
//! * [`Misr`] + [`fold_xor`] — the result collector: one MISR per module
//!   behind an XOR cascade, reachable through the output selector.
//! * [`ControlUnit`] — pattern counter, `test_enable`/`end_test`, result
//!   selection.
//! * [`BistEngine`] — the assembled engine; [`structural`] emits gate-level
//!   netlists for every block plus [`structural::insert_bist`], which builds
//!   the complete wrapped design of Fig. 2.
//!
//! # Example
//!
//! ```
//! use soctest_bist::{Alfsr, Misr};
//!
//! let mut alfsr = Alfsr::new(20).expect("table covers width 20");
//! let mut misr = Misr::new(16);
//! for _ in 0..4096 {
//!     let pattern = alfsr.step();
//!     misr.absorb(pattern & 0xFFFF);
//! }
//! // The signature is a deterministic function of the pattern stream.
//! let sig = misr.signature();
//! assert_ne!(sig, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alfsr;
mod control;
mod engine;
mod error;
mod misr;
mod pgen;
pub mod structural;

pub use alfsr::{Alfsr, ALFSR_VARIANTS};
pub use control::{BistCommand, BistPhase, ControlUnit};
pub use engine::{BistEngine, BistEngineConfig, ModuleHookup};
pub use error::EngineError;
pub use misr::{fold_xor, Misr};
pub use pgen::{
    BistStimulus, BitSource, ConstraintGenerator, HoldCycler, PatternGenerator, PortWiring,
    WeightedCg,
};
