//! Additive area reporting (the Table 2 machinery).

use std::collections::BTreeMap;
use std::fmt;

use soctest_netlist::Netlist;

use crate::Library;

/// An area report for one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Total cell area in µm².
    pub total_um2: f64,
    /// Area per gate kind (mnemonic → µm²).
    pub by_kind: BTreeMap<&'static str, f64>,
    /// Gate count contributing.
    pub gates: usize,
}

impl AreaReport {
    /// Overhead of `self` relative to a base area, in percent —
    /// `100 · self / base` (Table 2 reports DfT blocks this way).
    pub fn overhead_percent(&self, base_um2: f64) -> f64 {
        if base_um2 <= 0.0 {
            return 0.0;
        }
        100.0 * self.total_um2 / base_um2
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total: {:.2} µm² over {} gates",
            self.total_um2, self.gates
        )?;
        for (kind, area) in &self.by_kind {
            writeln!(f, "  {kind:>6}: {area:.2} µm²")?;
        }
        Ok(())
    }
}

impl Library {
    /// Computes the additive cell area of a netlist.
    pub fn area(&self, netlist: &Netlist) -> AreaReport {
        let mut by_kind: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut total = 0.0;
        let mut gates = 0;
        for gate in netlist.gates() {
            let spec = self.spec(gate.kind);
            if spec.area_um2 > 0.0 {
                *by_kind.entry(gate.kind.mnemonic()).or_insert(0.0) += spec.area_um2;
                total += spec.area_um2;
                gates += 1;
            }
        }
        AreaReport {
            total_um2: total,
            by_kind,
            gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_netlist::ModuleBuilder;

    #[test]
    fn area_is_additive() {
        let lib = Library::cmos_130nm();
        let mut mb = ModuleBuilder::new("m");
        let a = mb.input("a");
        let b = mb.input("b");
        let x = mb.and(a, b);
        let q = mb.register(&[x]);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();
        let r = lib.area(&nl);
        let expect = lib.spec(soctest_netlist::GateKind::And).area_um2
            + lib.spec(soctest_netlist::GateKind::Dff).area_um2;
        assert!((r.total_um2 - expect).abs() < 1e-9);
        assert_eq!(r.gates, 2);
    }

    #[test]
    fn overhead_math() {
        let r = AreaReport {
            total_um2: 20.0,
            by_kind: BTreeMap::new(),
            gates: 1,
        };
        assert!((r.overhead_percent(100.0) - 20.0).abs() < 1e-9);
        assert_eq!(r.overhead_percent(0.0), 0.0);
    }
}
