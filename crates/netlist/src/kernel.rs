//! Compiled structure-of-arrays netlist kernel.
//!
//! [`compile`] flattens a [`Netlist`] into a [`CompiledNetlist`]: a
//! levelized, contiguous, `u32`-indexed execution schedule that the fault
//! simulators (and any other hot loop) can sweep at memory-bandwidth speed
//! instead of chasing per-gate heap pointers through the graph. The
//! compiled form is immutable and shared behind an [`Arc`], so one
//! compilation serves every engine, window, and worker thread of a
//! campaign.
//!
//! The kernel carries three things on top of the plain gate list:
//!
//! * **Levelized SoA schedule** — every combinational gate as parallel
//!   arrays (`kind`, output net, fixed-width pin triple), ordered
//!   level-major so each level occupies a contiguous range
//!   ([`CompiledNetlist::level_range`]).
//! * **Scheduled fanout CSR** — for every net, the ascending schedule
//!   positions of the combinational gates it feeds
//!   ([`CompiledNetlist::fanout_ops`]), the seed set for event-driven
//!   incremental re-evaluation.
//! * **Cone-of-influence table** — for every schedule position, the bitset
//!   of downstream schedule positions ([`ConeTable`]), computed once per
//!   kernel (lazily, cached in the `Arc`-shared structure) by a reverse
//!   topological bitset sweep. A fault simulator re-evaluates only a fault
//!   site's cone against the cached good values; everything outside the
//!   cone provably holds the good-machine value.
//!
//! Evaluation over the compiled schedule is bit-identical to walking the
//! graph with [`crate::GateKind::eval_word`]: same gate semantics, any
//! topological order. `crates/conformance` pins that contract with a
//! dedicated kernel-vs-graph engine pair.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::{GateKind, NetId, Netlist, NetlistError};

/// Number of 64-bit words in a wide evaluation group (256 pattern lanes).
pub const LANE_WORDS: usize = 4;

/// A flattened, levelized, structure-of-arrays compile of a [`Netlist`].
///
/// Create one with [`compile`] (or [`Netlist::compile`]); see the
/// [module docs](self) for the layout.
#[derive(Debug)]
pub struct CompiledNetlist {
    nets: usize,
    // SoA over scheduled (combinational) gates, level-major order.
    op_kind: Vec<GateKind>,
    op_arity: Vec<u8>,
    op_out: Vec<u32>,
    op_pins: Vec<[u32; 3]>,
    level_offsets: Vec<u32>,
    /// Per net: schedule position + 1 of its driving gate (0 = source).
    sched_of: Vec<u32>,
    pis: Vec<u32>,
    pos: Vec<u32>,
    dff_q: Vec<u32>,
    dff_d: Vec<u32>,
    const1: Vec<u32>,
    // CSR: net -> ascending schedule positions of its combinational sinks.
    fan_off: Vec<u32>,
    fan_ops: Vec<u32>,
    // CSR: net -> indices of flip-flops whose `d` pin it drives.
    dsink_off: Vec<u32>,
    dsink_idx: Vec<u32>,
    cones: OnceLock<ConeTable>,
}

/// The cone-of-influence table of a compiled kernel: for every schedule
/// position, the bitset (over schedule positions) of gates downstream of
/// it within one combinational pass. Built by [`CompiledNetlist::cones`].
#[derive(Debug)]
pub struct ConeTable {
    words: usize,
    reach: Vec<u64>,
}

impl ConeTable {
    /// Words per cone bitset (`ceil(ops / 64)`).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The reachability bitset of schedule position `p` (includes `p`).
    pub fn reach(&self, p: usize) -> &[u64] {
        &self.reach[p * self.words..(p + 1) * self.words]
    }

    /// Number of schedule positions in the cone of `p` (including `p`).
    pub fn cone_len(&self, p: usize) -> usize {
        self.reach(p).iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Compiles `netlist` into an [`Arc`]-shared [`CompiledNetlist`].
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational
/// subgraph cannot be levelized.
pub fn compile(netlist: &Netlist) -> Result<Arc<CompiledNetlist>, NetlistError> {
    let n = netlist.len();
    let levels = netlist.levels()?;
    // Level-major schedule: stable by net id within a level, so the layout
    // is deterministic for a given netlist.
    let mut sched: Vec<u32> = netlist
        .iter()
        .filter(|(_, g)| !g.kind.is_source())
        .map(|(id, _)| id.0)
        .collect();
    sched.sort_by_key(|&id| (levels[id as usize], id));

    let max_level = sched.last().map_or(0, |&id| levels[id as usize] as usize);
    let mut level_offsets = vec![0u32; max_level + 2];
    let mut op_kind = Vec::with_capacity(sched.len());
    let mut op_arity = Vec::with_capacity(sched.len());
    let mut op_out = Vec::with_capacity(sched.len());
    let mut op_pins = Vec::with_capacity(sched.len());
    let mut sched_of = vec![0u32; n];
    for (p, &id) in sched.iter().enumerate() {
        let gate = netlist.gate(NetId(id));
        let mut pins = [0u32; 3];
        for (i, &pin) in gate.pins.iter().enumerate() {
            pins[i] = pin.0;
        }
        op_kind.push(gate.kind);
        op_arity.push(gate.pins.len() as u8);
        op_out.push(id);
        op_pins.push(pins);
        sched_of[id as usize] = p as u32 + 1;
        // Scheduled gates are level >= 1; record the end of each level.
        level_offsets[levels[id as usize] as usize] = p as u32 + 1;
    }
    // Turn per-level end positions into monotone offsets.
    for l in 1..level_offsets.len() {
        if level_offsets[l] < level_offsets[l - 1] {
            level_offsets[l] = level_offsets[l - 1];
        }
    }

    // Fanout CSR over scheduled sinks, ascending by construction.
    let mut fan_count = vec![0u32; n];
    for (p, pins) in op_pins.iter().enumerate() {
        for (i, &pin) in pins.iter().enumerate().take(op_arity[p] as usize) {
            // Skip duplicate pins on the same net (count each sink once).
            if i == 0 || pins[..i].iter().all(|&q| q != pin) {
                fan_count[pin as usize] += 1;
            }
        }
    }
    let mut fan_off = vec![0u32; n + 1];
    for i in 0..n {
        fan_off[i + 1] = fan_off[i] + fan_count[i];
    }
    let mut fan_ops = vec![0u32; fan_off[n] as usize];
    let mut cursor: Vec<u32> = fan_off[..n].to_vec();
    for (p, pins) in op_pins.iter().enumerate() {
        for (i, &pin) in pins.iter().enumerate().take(op_arity[p] as usize) {
            if i == 0 || pins[..i].iter().all(|&q| q != pin) {
                fan_ops[cursor[pin as usize] as usize] = p as u32;
                cursor[pin as usize] += 1;
            }
        }
    }

    let mut pis = Vec::new();
    let mut pos = Vec::new();
    for id in netlist.primary_inputs() {
        pis.push(id.0);
    }
    for id in netlist.primary_outputs() {
        pos.push(id.0);
    }
    let mut dff_q = Vec::new();
    let mut dff_d = Vec::new();
    for q in netlist.dffs() {
        dff_q.push(q.0);
        dff_d.push(netlist.gate(q).pins[0].0);
    }
    let const1: Vec<u32> = netlist
        .iter()
        .filter(|(_, g)| g.kind == GateKind::Const1)
        .map(|(id, _)| id.0)
        .collect();

    // Sequential-sink CSR: net -> flip-flop indices clocked from it (the
    // complement of the combinational fanout CSR, used by incremental
    // engines to track which state bits a deviation can reach at the edge).
    let mut dsink_count = vec![0u32; n];
    for &d in &dff_d {
        dsink_count[d as usize] += 1;
    }
    let mut dsink_off = vec![0u32; n + 1];
    for i in 0..n {
        dsink_off[i + 1] = dsink_off[i] + dsink_count[i];
    }
    let mut dsink_idx = vec![0u32; dsink_off[n] as usize];
    let mut dcursor: Vec<u32> = dsink_off[..n].to_vec();
    for (j, &d) in dff_d.iter().enumerate() {
        dsink_idx[dcursor[d as usize] as usize] = j as u32;
        dcursor[d as usize] += 1;
    }

    Ok(Arc::new(CompiledNetlist {
        nets: n,
        op_kind,
        op_arity,
        op_out,
        op_pins,
        level_offsets,
        sched_of,
        pis,
        pos,
        dff_q,
        dff_d,
        const1,
        fan_off,
        fan_ops,
        dsink_off,
        dsink_idx,
        cones: OnceLock::new(),
    }))
}

impl Netlist {
    /// Compiles this netlist into an [`Arc`]-shared SoA kernel; see
    /// [`compile`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// subgraph cannot be levelized.
    pub fn compile(&self) -> Result<Arc<CompiledNetlist>, NetlistError> {
        compile(self)
    }
}

/// Evaluates one scheduled gate on single-word operands; identical to
/// [`GateKind::eval_word`] for combinational kinds.
#[inline]
fn eval_op(kind: GateKind, a: u64, b: u64, c: u64) -> u64 {
    match kind {
        GateKind::Buf => a,
        GateKind::Not => !a,
        GateKind::And => a & b,
        GateKind::Or => a | b,
        GateKind::Nand => !(a & b),
        GateKind::Nor => !(a | b),
        GateKind::Xor => a ^ b,
        GateKind::Xnor => !(a ^ b),
        GateKind::Mux2 => (!a & b) | (a & c),
        // Sources are never scheduled; Const1 is materialized in the value
        // array, not evaluated.
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => 0,
    }
}

impl CompiledNetlist {
    /// Total net (= gate) count of the source netlist.
    pub fn nets(&self) -> usize {
        self.nets
    }

    /// Number of scheduled combinational gates.
    pub fn ops(&self) -> usize {
        self.op_kind.len()
    }

    /// Number of logic levels in the schedule.
    pub fn levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// The contiguous schedule range occupied by level `l` (1-based levels;
    /// level 0 holds the sources and is always empty).
    pub fn level_range(&self, l: usize) -> Range<usize> {
        if l == 0 || l >= self.level_offsets.len() {
            return 0..0;
        }
        self.level_offsets[l - 1] as usize..self.level_offsets[l] as usize
    }

    /// Gate kind at schedule position `p`.
    #[inline]
    pub fn op_kind(&self, p: usize) -> GateKind {
        self.op_kind[p]
    }

    /// Output net of the gate at schedule position `p`.
    #[inline]
    pub fn op_out(&self, p: usize) -> u32 {
        self.op_out[p]
    }

    /// The pin triple of the gate at schedule position `p` (unused pins 0).
    #[inline]
    pub fn op_pins(&self, p: usize) -> [u32; 3] {
        self.op_pins[p]
    }

    /// Number of used pin slots of the gate at schedule position `p`
    /// (trailing [`CompiledNetlist::op_pins`] slots beyond it are padding).
    #[inline]
    pub fn op_arity(&self, p: usize) -> usize {
        self.op_arity[p] as usize
    }

    /// Schedule position of the gate driving `net`, or `None` for sources.
    #[inline]
    pub fn sched_of(&self, net: u32) -> Option<usize> {
        let s = self.sched_of[net as usize];
        (s != 0).then(|| s as usize - 1)
    }

    /// Primary-input nets, in port order.
    pub fn pis(&self) -> &[u32] {
        &self.pis
    }

    /// Primary-output nets, in port order.
    pub fn pos(&self) -> &[u32] {
        &self.pos
    }

    /// Flip-flop output (`q`) nets, in [`Netlist::dffs`] order.
    pub fn dff_q(&self) -> &[u32] {
        &self.dff_q
    }

    /// Flip-flop data (`d`) nets, aligned with [`CompiledNetlist::dff_q`].
    pub fn dff_d(&self) -> &[u32] {
        &self.dff_d
    }

    /// Constant-1 nets (their value word must be all-ones).
    pub fn const1(&self) -> &[u32] {
        &self.const1
    }

    /// Ascending schedule positions of the combinational gates fed by
    /// `net` (flip-flop `d` sinks are sequential and not listed).
    #[inline]
    pub fn fanout_ops(&self, net: u32) -> &[u32] {
        let s = self.fan_off[net as usize] as usize;
        let e = self.fan_off[net as usize + 1] as usize;
        &self.fan_ops[s..e]
    }

    /// Indices (into [`CompiledNetlist::dff_q`] order) of the flip-flops
    /// whose `d` pin `net` drives — the sequential complement of
    /// [`CompiledNetlist::fanout_ops`].
    #[inline]
    pub fn dff_d_sinks(&self, net: u32) -> &[u32] {
        let s = self.dsink_off[net as usize] as usize;
        let e = self.dsink_off[net as usize + 1] as usize;
        &self.dsink_idx[s..e]
    }

    /// A value array sized for this kernel with constants materialized.
    pub fn fresh_values(&self) -> Vec<u64> {
        let mut values = vec![0u64; self.nets];
        for &c in &self.const1 {
            values[c as usize] = u64::MAX;
        }
        values
    }

    /// One full evaluation pass over the schedule (64 lanes per net).
    pub fn eval(&self, values: &mut [u64]) {
        for p in 0..self.op_kind.len() {
            let [a, b, c] = self.op_pins[p];
            let w = eval_op(
                self.op_kind[p],
                values[a as usize],
                values[b as usize],
                values[c as usize],
            );
            values[self.op_out[p] as usize] = w;
        }
    }

    /// One full evaluation pass over [`LANE_WORDS`] interleaved words per
    /// net (`values[net * LANE_WORDS + w]`): 256 pattern lanes per sweep.
    pub fn eval_wide(&self, values: &mut [u64]) {
        const W: usize = LANE_WORDS;
        for p in 0..self.op_kind.len() {
            let [a, b, c] = self.op_pins[p];
            let kind = self.op_kind[p];
            let (a, b, c) = (a as usize * W, b as usize * W, c as usize * W);
            let out = self.op_out[p] as usize * W;
            for w in 0..W {
                values[out + w] = eval_op(kind, values[a + w], values[b + w], values[c + w]);
            }
        }
    }

    /// Evaluates the single gate at schedule position `p` against `values`
    /// and returns the result without storing it.
    #[inline]
    pub fn eval_pos(&self, p: usize, values: &[u64]) -> u64 {
        let [a, b, c] = self.op_pins[p];
        eval_op(
            self.op_kind[p],
            values[a as usize],
            values[b as usize],
            values[c as usize],
        )
    }

    /// Evaluates the gate at schedule position `p` against caller-supplied
    /// pin words (in `op_pins` slot order; unused slots are ignored) and
    /// returns the result. Lets incremental engines substitute per-pin
    /// fallback values without materializing a full `values` array.
    #[inline]
    pub fn eval_pins(&self, p: usize, pins: [u64; 3]) -> u64 {
        eval_op(self.op_kind[p], pins[0], pins[1], pins[2])
    }

    /// The cone-of-influence table, built on first use and cached in the
    /// shared kernel (a reverse-schedule bitset sweep, `O(ops · edges/64)`).
    pub fn cones(&self) -> &ConeTable {
        self.cones.get_or_init(|| self.build_cones())
    }

    fn build_cones(&self) -> ConeTable {
        let n_ops = self.op_kind.len();
        let words = n_ops.div_ceil(64).max(1);
        let mut reach = vec![0u64; n_ops * words];
        for p in (0..n_ops).rev() {
            reach[p * words + p / 64] |= 1u64 << (p % 64);
            let out = self.op_out[p] as usize;
            let (s, e) = (self.fan_off[out] as usize, self.fan_off[out + 1] as usize);
            for k in s..e {
                let q = self.fan_ops[k] as usize;
                debug_assert!(q > p, "schedule must be topological");
                let (lo, hi) = reach.split_at_mut(q * words);
                let dst = &mut lo[p * words..p * words + words];
                let src = &hi[..words];
                for w in 0..words {
                    dst[w] |= src[w];
                }
            }
        }
        ConeTable { words, reach }
    }

    /// ORs the cone of `net` (the union of its scheduled sinks' reach
    /// bitsets — the net's own driver is *not* included) into `buf`,
    /// which must hold [`ConeTable::words`] words and is cleared first.
    pub fn cone_of_net_into(&self, net: u32, buf: &mut [u64]) {
        let cones = self.cones();
        buf.fill(0);
        for &q in self.fanout_ops(net) {
            let src = cones.reach(q as usize);
            for (d, s) in buf.iter_mut().zip(src) {
                *d |= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;

    fn sample() -> Netlist {
        let mut mb = ModuleBuilder::new("blk");
        let a = mb.input_bus("a", 4);
        let x0 = mb.xor(a[0], a[1]);
        let x1 = mb.and(a[2], a[3]);
        let o = mb.or(x0, x1);
        let q = mb.register(&[x0, x1, o]);
        mb.output_bus("q", &q);
        mb.finish().unwrap()
    }

    #[test]
    fn compile_schedules_every_comb_gate_in_level_major_order() {
        let nl = sample();
        let k = nl.compile().unwrap();
        let comb = nl.gates().iter().filter(|g| !g.kind.is_source()).count();
        assert_eq!(k.ops(), comb);
        assert_eq!(k.nets(), nl.len());
        let levels = nl.levels().unwrap();
        // Level-major: levels are non-decreasing along the schedule and
        // every level occupies exactly its level_range.
        let mut prev = 0;
        for p in 0..k.ops() {
            let l = levels[k.op_out(p) as usize];
            assert!(l >= prev, "schedule must be level-major");
            assert!(k.level_range(l as usize).contains(&p));
            prev = l;
        }
        // Topological: every pin is a source or scheduled earlier.
        for p in 0..k.ops() {
            let arity = nl.gate(NetId(k.op_out(p))).pins.len();
            for &pin in k.op_pins(p).iter().take(arity) {
                match k.sched_of(pin) {
                    None => {}
                    Some(q) => assert!(q < p),
                }
            }
        }
    }

    #[test]
    fn kernel_eval_matches_graph_eval_word() {
        let nl = sample();
        let k = nl.compile().unwrap();
        let order = nl.levelize().unwrap();
        for seed in 0..16u64 {
            let mut kv = k.fresh_values();
            let mut gv = k.fresh_values();
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for &pi in k.pis() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                kv[pi as usize] = s;
                gv[pi as usize] = s;
            }
            k.eval(&mut kv);
            let mut pins = [0u64; 3];
            for &id in &order {
                let gate = nl.gate(id);
                for (i, &p) in gate.pins.iter().enumerate() {
                    pins[i] = gv[p.index()];
                }
                gv[id.index()] = gate.kind.eval_word(&pins[..gate.pins.len()]);
            }
            assert_eq!(kv, gv, "seed {seed}");
        }
    }

    #[test]
    fn eval_wide_matches_four_scalar_passes() {
        let nl = sample();
        let k = nl.compile().unwrap();
        let mut wide = vec![0u64; k.nets() * LANE_WORDS];
        for &c in k.const1() {
            for w in 0..LANE_WORDS {
                wide[c as usize * LANE_WORDS + w] = u64::MAX;
            }
        }
        let mut scalars: Vec<Vec<u64>> = (0..LANE_WORDS).map(|_| k.fresh_values()).collect();
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        for &pi in k.pis() {
            for (w, sc) in scalars.iter_mut().enumerate() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                sc[pi as usize] = s;
                wide[pi as usize * LANE_WORDS + w] = s;
            }
        }
        k.eval_wide(&mut wide);
        for (w, sc) in scalars.iter_mut().enumerate() {
            k.eval(sc);
            for net in 0..k.nets() {
                assert_eq!(wide[net * LANE_WORDS + w], sc[net], "net {net} word {w}");
            }
        }
    }

    #[test]
    fn fanout_ops_are_ascending_and_complete() {
        let nl = sample();
        let k = nl.compile().unwrap();
        for net in 0..k.nets() as u32 {
            let ops = k.fanout_ops(net);
            assert!(ops.windows(2).all(|w| w[0] < w[1]), "ascending, deduped");
            for &p in ops {
                assert!(
                    k.op_pins(p as usize).contains(&net),
                    "fanout op must read the net"
                );
            }
        }
        // Every scheduled pin appears in its net's fanout list.
        for p in 0..k.ops() {
            let arity = nl.gate(NetId(k.op_out(p))).pins.len();
            for &pin in k.op_pins(p).iter().take(arity) {
                assert!(k.fanout_ops(pin).contains(&(p as u32)));
            }
        }
    }

    #[test]
    fn cones_cover_exact_forward_reachability() {
        let nl = sample();
        let k = nl.compile().unwrap();
        let cones = k.cones();
        // Reference reachability by DFS over fanout_ops.
        for p in 0..k.ops() {
            let mut seen = vec![false; k.ops()];
            let mut stack = vec![p];
            while let Some(x) = stack.pop() {
                if seen[x] {
                    continue;
                }
                seen[x] = true;
                for &q in k.fanout_ops(k.op_out(x)) {
                    stack.push(q as usize);
                }
            }
            let bits = cones.reach(p);
            for (q, &s) in seen.iter().enumerate() {
                let in_cone = (bits[q / 64] >> (q % 64)) & 1 == 1;
                assert_eq!(in_cone, s, "op {p} -> {q}");
            }
            assert_eq!(cones.cone_len(p), seen.iter().filter(|&&s| s).count());
        }
    }

    #[test]
    fn cone_of_net_excludes_the_driver_and_matches_sinks() {
        let nl = sample();
        let k = nl.compile().unwrap();
        let words = k.cones().words();
        let mut buf = vec![0u64; words];
        for net in 0..k.nets() as u32 {
            k.cone_of_net_into(net, &mut buf);
            if let Some(p) = k.sched_of(net) {
                // A net's driver never needs re-evaluation: the site value
                // is forced, only downstream gates react.
                if !k.fanout_ops(net).contains(&(p as u32)) {
                    assert_eq!((buf[p / 64] >> (p % 64)) & 1, 0, "net {net}");
                }
            }
            for &q in k.fanout_ops(net) {
                let q = q as usize;
                assert_eq!((buf[q / 64] >> (q % 64)) & 1, 1);
            }
        }
    }

    #[test]
    fn compile_is_shareable_across_threads() {
        let nl = sample();
        let k = nl.compile().unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let k = Arc::clone(&k);
                s.spawn(move || {
                    let mut v = k.fresh_values();
                    k.eval(&mut v);
                    let _ = k.cones().words();
                });
            }
        });
    }

    #[test]
    fn cyclic_netlists_fail_to_compile() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_gate(GateKind::Input, vec![]);
        let b = nl.add_gate_unchecked(GateKind::And, vec![a, NetId(2)]);
        let c = nl.add_gate_unchecked(GateKind::Or, vec![b, a]);
        nl.set_pin(b, 1, c);
        assert!(matches!(
            nl.compile(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }
}
