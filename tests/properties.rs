//! Property-based tests on the core data structures and simulator
//! invariants, spanning crates.

use proptest::prelude::*;

use soctest::bist::{Alfsr, Misr};
use soctest::fault::{FaultUniverse, PatternSet, SeqFaultSim, SeqFaultSimConfig, VectorStimulus};
use soctest::netlist::{GateKind, ModuleBuilder, NetId, Netlist};
use soctest::sim::{CombSim, SeqSim};

/// A random but *valid* combinational netlist: `n_in` inputs followed by
/// random 2-input gates over earlier nets.
fn random_comb(n_in: usize, gates: &[(u8, u16, u16)]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut nets: Vec<NetId> = (0..n_in)
        .map(|_| nl.add_gate(GateKind::Input, vec![]))
        .collect();
    for &(kind, a, b) in gates {
        let k = match kind % 6 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            _ => GateKind::Xnor,
        };
        let pa = nets[a as usize % nets.len()];
        let pb = nets[b as usize % nets.len()];
        nets.push(nl.add_gate(k, vec![pa, pb]));
    }
    let ins: Vec<NetId> = nets[..n_in].to_vec();
    let last = *nets.last().expect("nonempty");
    nl.add_port(soctest::netlist::PortDir::Input, "in", ins).unwrap();
    nl.add_port(soctest::netlist::PortDir::Output, "out", vec![last])
        .unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Levelization emits every combinational gate after its drivers.
    #[test]
    fn levelize_respects_dependencies(
        n_in in 1usize..6,
        gates in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..60),
    ) {
        let nl = random_comb(n_in, &gates);
        let order = nl.levelize().unwrap();
        let mut pos = vec![usize::MAX; nl.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, gate) in nl.iter() {
            if gate.kind.is_source() { continue; }
            for p in &gate.pins {
                if !nl.gate(*p).kind.is_source() {
                    prop_assert!(pos[p.index()] < pos[id.index()]);
                }
            }
        }
    }

    /// Bit-parallel evaluation agrees with 64 independent single-lane runs.
    #[test]
    fn lanes_are_independent(
        n_in in 1usize..5,
        gates in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..40),
        stimulus in prop::collection::vec(any::<u64>(), 1..5),
    ) {
        let nl = random_comb(n_in, &gates);
        let mut sim = CombSim::new(&nl).unwrap();
        let ins = nl.port("in").unwrap().bits().to_vec();
        let out = nl.port("out").unwrap().bits()[0];
        for words in stimulus.chunks(n_in) {
            let mut padded = words.to_vec();
            padded.resize(n_in, 0);
            for (&net, &w) in ins.iter().zip(&padded) {
                sim.set(net, w);
            }
            sim.eval(&nl);
            let parallel = sim.get(out);
            // Re-run lane 7 alone, broadcast.
            let mut solo = CombSim::new(&nl).unwrap();
            for (&net, &w) in ins.iter().zip(&padded) {
                solo.set(net, if (w >> 7) & 1 == 1 { u64::MAX } else { 0 });
            }
            solo.eval(&nl);
            prop_assert_eq!((parallel >> 7) & 1, solo.get(out) & 1);
        }
    }

    /// Fault collapsing partitions the uncollapsed universe exactly.
    #[test]
    fn collapsing_is_a_partition(
        n_in in 1usize..5,
        gates in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..50),
    ) {
        let nl = random_comb(n_in, &gates);
        let u = FaultUniverse::stuck_at(&nl);
        let member_total: usize = (0..u.len()).map(|i| u.class(i).len()).sum();
        prop_assert_eq!(member_total, u.total_sites());
        for i in 0..u.len() {
            prop_assert!(u.class(i).contains(&u.faults()[i]), "representative in class");
        }
    }

    /// Fault-simulation results are invariant under the window length.
    #[test]
    fn windowing_never_changes_detection(
        n_in in 2usize..5,
        gates in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 4..30),
        patterns in prop::collection::vec(any::<u64>(), 8..40),
        window in 1u64..20,
    ) {
        // Registered random block so state is involved.
        let comb = random_comb(n_in, &gates);
        let mut mb = ModuleBuilder::new("regged");
        let ins = mb.input_bus("in", n_in);
        let map = std::collections::HashMap::from([("in".to_owned(), ins)]);
        let outs = mb.netlist_mut().instantiate(&comb, &map).unwrap();
        let q = mb.register(&outs["out"]);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();

        let u = FaultUniverse::stuck_at(&nl);
        let run = |w: u64| {
            let mut stim = VectorStimulus::new(patterns.clone());
            SeqFaultSim::new(&u, SeqFaultSimConfig { window: w, ..Default::default() })
                .run(&mut stim)
                .unwrap()
                .detection
        };
        prop_assert_eq!(run(window), run(1 << 20));
    }

    /// The ALFSR never locks up and `state_at` matches stepping.
    #[test]
    fn alfsr_streams_consistently(width in 2usize..20, n in 0u64..200) {
        let mut a = Alfsr::new(width).unwrap();
        let ones = (1u64 << width) - 1;
        for _ in 0..n {
            a.step();
            prop_assert_ne!(a.state(), ones, "lock-up state reached");
        }
        prop_assert_eq!(a.state(), a.state_at(n));
    }

    /// MISR signatures distinguish any single-bit difference in a stream.
    #[test]
    fn misr_catches_single_flips(
        stream in prop::collection::vec(any::<u16>(), 2..40),
        at in any::<prop::sample::Index>(),
        bit in 0usize..16,
    ) {
        let flip_at = at.index(stream.len());
        let mut clean = Misr::new(16);
        let mut dirty = Misr::new(16);
        for (i, &w) in stream.iter().enumerate() {
            clean.absorb(w as u64);
            let e = if i == flip_at { 1u64 << bit } else { 0 };
            dirty.absorb(w as u64 ^ e);
        }
        prop_assert_ne!(clean.signature(), dirty.signature());
    }

    /// Pattern sets round-trip arbitrary rows.
    #[test]
    fn pattern_set_round_trip(rows in prop::collection::vec(
        prop::collection::vec(any::<bool>(), 7), 1..70)) {
        let set = PatternSet::from_rows(7, &rows);
        prop_assert_eq!(set.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&set.row(i), row);
        }
    }

    /// Sequential simulation is deterministic in its inputs.
    #[test]
    fn seq_sim_is_deterministic(
        n_in in 1usize..4,
        gates in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..30),
        drive in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let comb = random_comb(n_in, &gates);
        let run = || {
            let mut sim = SeqSim::new(&comb).unwrap();
            let ins = comb.port("in").unwrap().bits().to_vec();
            let out = comb.port("out").unwrap().bits()[0];
            let mut acc = 0u64;
            for &d in &drive {
                for (k, &net) in ins.iter().enumerate() {
                    sim.set_input_bit(net, (d >> k) & 1 == 1);
                }
                sim.step();
                sim.eval_comb();
                acc = acc.wrapping_mul(31).wrapping_add(sim.get(out) & 1);
            }
            acc
        };
        prop_assert_eq!(run(), run());
    }
}
