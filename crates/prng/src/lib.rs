//! A tiny, dependency-free deterministic PRNG for the workspace.
//!
//! The registry is not always reachable where this repository builds, so
//! nothing in the tree may depend on external crates. Everything that used
//! to reach for `rand` — channel noise, code-construction shuffles, random
//! test stimuli, property-style tests — goes through [`SplitMix64`]
//! instead: a 64-bit state, a Weyl-sequence increment, and an output mix
//! with excellent avalanche behavior (the generator PCG and xoshiro use to
//! seed themselves).
//!
//! The API is intentionally small and explicit. Every stream is seeded, so
//! every consumer is reproducible by construction.
//!
//! ```
//! use soctest_prng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! assert_ne!(a, rng.next_u64());
//! assert_eq!(SplitMix64::new(42).next_u64(), a, "seeded streams replay");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64: Sebastiano Vigna's mix of Steele et al.'s SplitMix.
///
/// Period 2^64 (the state is a counter), uniform output, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// A uniform integer in `[0, bound)`. Returns 0 for `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection so small bounds are unbiased.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`. Returns 0 for `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// A standard-normal sample (Box–Muller; one of the pair is discarded
    /// to keep the generator stateless beyond its 64-bit counter).
    pub fn gen_gaussian(&mut self) -> f64 {
        // u1 in (0, 1] so ln is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Fills a boolean slice with fair coin flips.
    pub fn fill_bool(&mut self, out: &mut [bool]) {
        let mut word = 0u64;
        for (i, b) in out.iter_mut().enumerate() {
            if i % 64 == 0 {
                word = self.next_u64();
            }
            *b = word & 1 == 1;
            word >>= 1;
        }
    }
}

/// One step of the xorshift64 generator (never returns 0; zero seeds are
/// redirected to a fixed odd constant). Kept for call sites that want a
/// single stateless scramble rather than a stream.
#[inline]
pub fn xorshift64(mut x: u64) -> u64 {
    if x == 0 {
        x = 0x9E37_79B9_7F4A_7C15;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_replay_and_differ_by_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_is_roughly_uniform_and_in_range() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.gen_below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SplitMix64::new(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gaussian_has_zero_mean_unit_variance() {
        let mut r = SplitMix64::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn xorshift_never_returns_zero() {
        assert_ne!(xorshift64(0), 0);
        let mut x = 1u64;
        for _ in 0..1000 {
            x = xorshift64(x);
            assert_ne!(x, 0);
        }
    }
}
