//! Microbenchmarks of the BIST building blocks (behavioral and
//! structural), plus an ablation over MISR width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctest_bist::{structural, Alfsr, Misr};
use soctest_netlist::Netlist;
use soctest_sim::SeqSim;

fn bench_blocks(c: &mut Criterion) {
    c.bench_function("alfsr20_step_4096", |b| {
        let mut a = Alfsr::new(20).unwrap();
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..4096 {
                acc ^= a.step();
            }
            acc
        })
    });
    // Ablation: MISR width (aliasing head-room costs nothing in time).
    let mut group = c.benchmark_group("misr_absorb_4096");
    for width in [8usize, 16, 32] {
        group.bench_function(BenchmarkId::from_parameter(width), |b| {
            let mut m = Misr::new(width);
            b.iter(|| {
                for i in 0..4096u64 {
                    m.absorb(i.wrapping_mul(0x9E37_79B9));
                }
                m.signature()
            })
        });
    }
    group.finish();
    // Structural ALFSR, gate-level simulation cost.
    c.bench_function("structural_alfsr20_sim_256", |b| {
        let nl: Netlist = structural::alfsr(20).unwrap();
        b.iter(|| {
            let mut sim = SeqSim::new(&nl).unwrap();
            sim.drive_port("en", 1);
            for _ in 0..256 {
                sim.step();
            }
            sim.read_port_lane("q", 0)
        })
    });
}

criterion_group!(benches, bench_blocks);
criterion_main!(benches);
