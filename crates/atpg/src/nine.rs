//! Nine-valued ATPG logic: a good/faulty pair of three-valued signals.
//!
//! The classic PODEM five values (0, 1, X, D, D̄) are the subset where both
//! components are known or both unknown; keeping the full product of
//! `{0, 1, X} × {0, 1, X}` makes implication strictly more precise at no
//! extra cost.

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum T3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    X,
}

impl T3 {
    pub(crate) fn from_bool(b: bool) -> T3 {
        if b {
            T3::One
        } else {
            T3::Zero
        }
    }

    fn and(self, other: T3) -> T3 {
        match (self, other) {
            (T3::Zero, _) | (_, T3::Zero) => T3::Zero,
            (T3::One, T3::One) => T3::One,
            _ => T3::X,
        }
    }

    fn or(self, other: T3) -> T3 {
        match (self, other) {
            (T3::One, _) | (_, T3::One) => T3::One,
            (T3::Zero, T3::Zero) => T3::Zero,
            _ => T3::X,
        }
    }

    fn xor(self, other: T3) -> T3 {
        match (self, other) {
            (T3::X, _) | (_, T3::X) => T3::X,
            (a, b) => T3::from_bool((a == T3::One) != (b == T3::One)),
        }
    }

    fn not(self) -> T3 {
        match self {
            T3::Zero => T3::One,
            T3::One => T3::Zero,
            T3::X => T3::X,
        }
    }

    fn mux(sel: T3, a: T3, b: T3) -> T3 {
        match sel {
            T3::Zero => a,
            T3::One => b,
            T3::X => {
                if a == b && a != T3::X {
                    a
                } else {
                    T3::X
                }
            }
        }
    }
}

/// A nine-valued signal: the value in the good machine paired with the value
/// in the faulty machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct V9 {
    pub(crate) good: T3,
    pub(crate) faulty: T3,
}

impl V9 {
    /// Completely unknown.
    pub const X: V9 = V9 {
        good: T3::X,
        faulty: T3::X,
    };
    /// Constant 0 in both machines.
    pub const ZERO: V9 = V9 {
        good: T3::Zero,
        faulty: T3::Zero,
    };
    /// Constant 1 in both machines.
    pub const ONE: V9 = V9 {
        good: T3::One,
        faulty: T3::One,
    };
    /// The classic D: good 1, faulty 0.
    pub const D: V9 = V9 {
        good: T3::One,
        faulty: T3::Zero,
    };
    /// The classic D̄: good 0, faulty 1.
    pub const DBAR: V9 = V9 {
        good: T3::Zero,
        faulty: T3::One,
    };

    /// Lifts a known boolean (same in both machines).
    pub fn known(b: bool) -> V9 {
        if b {
            V9::ONE
        } else {
            V9::ZERO
        }
    }

    /// Whether the fault effect is visible here (both known, different).
    pub fn is_fault_visible(self) -> bool {
        self.good != T3::X && self.faulty != T3::X && self.good != self.faulty
    }

    /// Whether the good-machine component is known.
    pub fn good_known(self) -> Option<bool> {
        match self.good {
            T3::Zero => Some(false),
            T3::One => Some(true),
            T3::X => None,
        }
    }

    /// Whether either component is still unknown.
    pub fn has_x(self) -> bool {
        self.good == T3::X || self.faulty == T3::X
    }

    /// AND of two signals.
    pub fn and(self, o: V9) -> V9 {
        V9 {
            good: self.good.and(o.good),
            faulty: self.faulty.and(o.faulty),
        }
    }

    /// OR of two signals.
    pub fn or(self, o: V9) -> V9 {
        V9 {
            good: self.good.or(o.good),
            faulty: self.faulty.or(o.faulty),
        }
    }

    /// XOR of two signals.
    pub fn xor(self, o: V9) -> V9 {
        V9 {
            good: self.good.xor(o.good),
            faulty: self.faulty.xor(o.faulty),
        }
    }

    /// Inversion.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> V9 {
        V9 {
            good: self.good.not(),
            faulty: self.faulty.not(),
        }
    }

    /// 2:1 mux (`a` when `sel` is 0).
    pub fn mux(sel: V9, a: V9, b: V9) -> V9 {
        V9 {
            good: T3::mux(sel.good, a.good, b.good),
            faulty: T3::mux(sel.faulty, a.faulty, b.faulty),
        }
    }

    /// Forces the faulty component (fault injection at the site).
    pub fn with_faulty(self, value: bool) -> V9 {
        V9 {
            good: self.good,
            faulty: T3::from_bool(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_propagates_through_and_with_one() {
        assert_eq!(V9::D.and(V9::ONE), V9::D);
        assert_eq!(V9::D.and(V9::ZERO), V9::ZERO);
        assert_eq!(V9::D.and(V9::DBAR), V9::ZERO);
        assert!(V9::D.and(V9::X).has_x());
    }

    #[test]
    fn xor_of_d_and_one_is_dbar() {
        assert_eq!(V9::D.xor(V9::ONE), V9::DBAR);
        assert_eq!(V9::D.not(), V9::DBAR);
    }

    #[test]
    fn mux_resolves_when_branches_agree() {
        assert_eq!(V9::mux(V9::X, V9::ONE, V9::ONE), V9::ONE);
        assert!(V9::mux(V9::X, V9::ONE, V9::ZERO).has_x());
        assert_eq!(V9::mux(V9::ZERO, V9::D, V9::ONE), V9::D);
        assert_eq!(V9::mux(V9::ONE, V9::D, V9::DBAR), V9::DBAR);
    }

    #[test]
    fn fault_visibility() {
        assert!(V9::D.is_fault_visible());
        assert!(V9::DBAR.is_fault_visible());
        assert!(!V9::ONE.is_fault_visible());
        assert!(!V9::X.is_fault_visible());
        assert_eq!(V9::known(true), V9::ONE);
    }

    #[test]
    fn injection_overrides_faulty_component() {
        assert_eq!(V9::ONE.with_faulty(false), V9::D);
        assert_eq!(V9::ZERO.with_faulty(true), V9::DBAR);
        assert_eq!(V9::ZERO.with_faulty(false), V9::ZERO);
    }
}
