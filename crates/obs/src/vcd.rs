//! Value Change Dump (IEEE 1364 §18) writing and reading.
//!
//! [`VcdWriter`] produces a deterministic, GTKWave-loadable waveform:
//! variables are declared up front (nested scopes derived from dotted
//! paths), then values are emitted *change-only* per timestamp.
//! [`VcdReader`] parses the subset the writer emits — enough for
//! round-trip tests and for asserting on captured waveforms without
//! external tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A declared variable: index into the writer's value table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
struct VarDecl {
    /// Dotted hierarchical path, e.g. `"dut.bit_node.q0"`.
    path: String,
    width: u32,
    id_code: String,
}

/// Streaming VCD writer with change-only emission.
///
/// Usage: declare every variable with [`VcdWriter::add_var`], then per
/// timestamp call [`VcdWriter::change`] for each variable and
/// [`VcdWriter::advance`] once. The header (including `$dumpvars` with
/// initial `x` values) is rendered lazily on the first `advance`, so the
/// output is deterministic for a given declaration order.
#[derive(Debug, Clone, Default)]
pub struct VcdWriter {
    vars: Vec<VarDecl>,
    /// Pending changes for the current timestamp, by var index.
    pending: BTreeMap<usize, u64>,
    /// Last emitted value per var (None = still `x`).
    last: Vec<Option<u64>>,
    body: String,
    header_done: bool,
    timescale: &'static str,
}

/// Printable VCD identifier code for variable `index` (base-94 over the
/// printable ASCII range `!`..=`~`).
fn id_code(index: usize) -> String {
    let mut n = index;
    let mut code = String::new();
    loop {
        code.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    code
}

impl VcdWriter {
    /// A writer with the default `1ns` timescale.
    pub fn new() -> Self {
        VcdWriter {
            timescale: "1ns",
            ..Default::default()
        }
    }

    /// Declares a variable at a dotted path (`"top.module.signal"`), with
    /// the given bit width. Must be called before the first [`advance`].
    ///
    /// [`advance`]: VcdWriter::advance
    pub fn add_var(&mut self, path: &str, width: u32) -> VarId {
        debug_assert!(!self.header_done, "declare vars before the first advance");
        let index = self.vars.len();
        self.vars.push(VarDecl {
            path: path.to_owned(),
            width: width.clamp(1, 64),
            id_code: id_code(index),
        });
        self.last.push(None);
        VarId(index)
    }

    /// Stages a value for `var` at the current timestamp. The change is
    /// only written out if the value differs from the last emitted one.
    pub fn change(&mut self, var: VarId, value: u64) {
        self.pending.insert(var.0, value);
    }

    /// Closes the current timestamp: emits `#time` plus every staged value
    /// that actually changed.
    pub fn advance(&mut self, time: u64) {
        if !self.header_done {
            self.header_done = true;
        }
        let mut lines = String::new();
        for (&idx, &value) in &self.pending {
            if self.last[idx] == Some(value) {
                continue;
            }
            self.last[idx] = Some(value);
            let v = &self.vars[idx];
            if v.width == 1 {
                let _ = writeln!(lines, "{}{}", value & 1, v.id_code);
            } else {
                let _ = writeln!(lines, "b{:b} {}", value, v.id_code);
            }
        }
        self.pending.clear();
        if !lines.is_empty() {
            let _ = writeln!(self.body, "#{time}");
            self.body.push_str(&lines);
        }
    }

    /// Renders the complete VCD document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$comment soctest waveform $end\n");
        let _ = writeln!(out, "$timescale {} $end", self.timescale);
        // Nested scopes from dotted paths: group variables by their
        // directory prefix and walk the tree depth-first in path order.
        let mut open: Vec<String> = Vec::new();
        for v in &self.vars {
            let parts: Vec<&str> = v.path.split('.').collect();
            let (scopes, name) = parts.split_at(parts.len() - 1);
            // Pop scopes that no longer match, then push new ones.
            let mut common = 0;
            while common < open.len() && common < scopes.len() && open[common] == scopes[common] {
                common += 1;
            }
            for _ in common..open.len() {
                out.push_str("$upscope $end\n");
                open.pop();
            }
            for s in &scopes[common..] {
                let _ = writeln!(out, "$scope module {s} $end");
                open.push((*s).to_owned());
            }
            let _ = writeln!(out, "$var wire {} {} {} $end", v.width, v.id_code, name[0]);
        }
        for _ in 0..open.len() {
            out.push_str("$upscope $end\n");
        }
        out.push_str("$enddefinitions $end\n$dumpvars\n");
        for v in &self.vars {
            if v.width == 1 {
                let _ = writeln!(out, "x{}", v.id_code);
            } else {
                let _ = writeln!(out, "bx {}", v.id_code);
            }
        }
        out.push_str("$end\n");
        out.push_str(&self.body);
        out
    }

    /// Declared variable count.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }
}

/// One variable recovered by [`VcdReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdVar {
    /// Full dotted path reconstructed from the scope stack.
    pub path: String,
    /// Declared bit width.
    pub width: u32,
    /// The identifier code used in the value-change section.
    pub id_code: String,
}

/// A parsed VCD document: declarations plus per-variable change lists.
#[derive(Debug, Clone, Default)]
pub struct VcdReader {
    /// Variables in declaration order.
    pub vars: Vec<VcdVar>,
    /// `(time, value)` changes per id code; `None` value = unknown (`x`).
    pub changes: BTreeMap<String, Vec<(u64, Option<u64>)>>,
}

impl VcdReader {
    /// Parses a VCD document (the subset [`VcdWriter`] emits: `$scope`,
    /// `$var`, `$upscope`, `$enddefinitions`, `$dumpvars`, `#time`, scalar
    /// and `b…` vector changes).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<VcdReader, String> {
        let mut reader = VcdReader::default();
        let mut scopes: Vec<String> = Vec::new();
        let mut time = 0u64;
        let mut in_defs = true;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                ["$comment", ..] | ["$timescale", ..] | ["$dumpvars"] | ["$end"] => {}
                ["$scope", "module", name, "$end"] => scopes.push((*name).to_owned()),
                ["$upscope", "$end"] => {
                    scopes.pop();
                }
                ["$enddefinitions", "$end"] => in_defs = false,
                ["$var", _kind, width, id, name, "$end"] => {
                    let width: u32 = width
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad width {width}"))?;
                    let mut path = scopes.join(".");
                    if !path.is_empty() {
                        path.push('.');
                    }
                    path.push_str(name);
                    reader.vars.push(VcdVar {
                        path,
                        width,
                        id_code: (*id).to_owned(),
                    });
                }
                [t] if t.starts_with('#') => {
                    time = t[1..]
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad timestamp {t}"))?;
                }
                [v, id] if v.starts_with('b') => {
                    let value = match &v[1..] {
                        s if s.contains('x') || s.contains('X') => None,
                        s => Some(
                            u64::from_str_radix(s, 2)
                                .map_err(|_| format!("line {lineno}: bad vector {v}"))?,
                        ),
                    };
                    reader.push_change(id, time, value, in_defs);
                }
                [sv] if sv.len() >= 2 && matches!(sv.as_bytes()[0], b'0' | b'1' | b'x' | b'X') => {
                    let value = match sv.as_bytes()[0] {
                        b'0' => Some(0),
                        b'1' => Some(1),
                        _ => None,
                    };
                    reader.push_change(&sv[1..], time, value, in_defs);
                }
                _ => return Err(format!("line {lineno}: unrecognized: {line}")),
            }
        }
        Ok(reader)
    }

    fn push_change(&mut self, id: &str, time: u64, value: Option<u64>, _in_defs: bool) {
        self.changes
            .entry(id.to_owned())
            .or_default()
            .push((time, value));
    }

    /// The change list for a variable by dotted path.
    pub fn changes_for(&self, path: &str) -> Option<&[(u64, Option<u64>)]> {
        let var = self.vars.iter().find(|v| v.path == path)?;
        self.changes.get(&var.id_code).map(Vec::as_slice)
    }

    /// The value of `path` at `time` (last change at or before it);
    /// `None` if unknown (`x`) or never driven.
    pub fn value_at(&self, path: &str, time: u64) -> Option<u64> {
        let changes = self.changes_for(path)?;
        changes
            .iter()
            .take_while(|(t, _)| *t <= time)
            .last()
            .and_then(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.bytes().all(|b| (b'!'..=b'~').contains(&b)));
            assert!(seen.insert(code), "duplicate id code at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn change_only_emission_round_trips() {
        let mut w = VcdWriter::new();
        let clk = w.add_var("top.clk", 1);
        let q = w.add_var("top.dut.q", 4);
        for t in 0..4u64 {
            w.change(clk, t & 1);
            w.change(q, t / 2); // changes only at t=2
            w.advance(t);
        }
        let text = w.render();
        let r = VcdReader::parse(&text).unwrap();
        assert_eq!(r.vars.len(), 2);
        assert_eq!(r.vars[0].path, "top.clk");
        assert_eq!(r.vars[1].path, "top.dut.q");
        // clk toggles every cycle; q has x-init + changes at 0 and 2 only.
        assert_eq!(r.value_at("top.clk", 3), Some(1));
        assert_eq!(r.value_at("top.dut.q", 1), Some(0));
        assert_eq!(r.value_at("top.dut.q", 3), Some(1));
        let q_changes = r.changes_for("top.dut.q").unwrap();
        // dumpvars x, then 0 at t=0, then 1 at t=2.
        assert_eq!(q_changes.len(), 3);
        assert_eq!(q_changes[1], (0, Some(0)));
        assert_eq!(q_changes[2], (2, Some(1)));
    }

    #[test]
    fn nested_scopes_render_and_parse() {
        let mut w = VcdWriter::new();
        w.add_var("a.b.x", 1);
        w.add_var("a.b.y", 1);
        w.add_var("a.c.z", 8);
        w.add_var("top_level", 1);
        let text = w.render();
        assert_eq!(text.matches("$scope module").count(), 3); // a, b, c
        assert_eq!(text.matches("$upscope").count(), 3);
        let r = VcdReader::parse(&text).unwrap();
        let paths: Vec<&str> = r.vars.iter().map(|v| v.path.as_str()).collect();
        assert_eq!(paths, vec!["a.b.x", "a.b.y", "a.c.z", "top_level"]);
    }

    #[test]
    fn unknown_values_read_back_as_none() {
        let mut w = VcdWriter::new();
        let v = w.add_var("n", 1);
        w.advance(0); // no change staged: stays x
        w.change(v, 1);
        w.advance(5);
        let r = VcdReader::parse(&w.render()).unwrap();
        assert_eq!(r.value_at("n", 0), None, "still x before first drive");
        assert_eq!(r.value_at("n", 5), Some(1));
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(VcdReader::parse("$var wire nope ! x $end").is_err());
        assert!(VcdReader::parse("not a vcd line").is_err());
    }
}
