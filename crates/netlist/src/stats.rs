//! Gate-count statistics for reports and the area model.

use std::collections::BTreeMap;
use std::fmt;

use crate::{GateKind, Netlist};

/// Aggregate counts over a [`Netlist`], used by area reports (Table 2) and
/// the README inventory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Gate count per kind (only kinds that occur).
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Total number of gates (= nets).
    pub gates: usize,
    /// Number of flip-flops.
    pub dffs: usize,
    /// Number of primary-input bits.
    pub inputs: usize,
    /// Number of primary-output bits.
    pub outputs: usize,
    /// Total number of input pins across all gates.
    pub pins: usize,
    /// Combinational gates (everything that is not a source).
    pub combinational: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut dffs = 0;
        let mut pins = 0;
        let mut combinational = 0;
        for gate in netlist.gates() {
            *by_kind.entry(gate.kind.mnemonic()).or_insert(0) += 1;
            pins += gate.pins.len();
            if gate.kind == GateKind::Dff {
                dffs += 1;
            }
            if !gate.kind.is_source() {
                combinational += 1;
            }
        }
        NetlistStats {
            by_kind,
            gates: netlist.len(),
            dffs,
            inputs: netlist.input_width(),
            outputs: netlist.output_width(),
            pins,
            combinational,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gates: {} (comb {}, dff {}), pins: {}, PI: {}, PO: {}",
            self.gates, self.combinational, self.dffs, self.pins, self.inputs, self.outputs
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind:>6}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::ModuleBuilder;

    #[test]
    fn stats_count_correctly() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.input_bus("a", 4);
        let q = mb.register(&a);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();
        let s = nl.stats();
        assert_eq!(s.inputs, 4);
        assert_eq!(s.outputs, 4);
        assert_eq!(s.dffs, 4);
        assert_eq!(s.by_kind["dff"], 4);
        assert!(!s.to_string().is_empty());
    }
}
