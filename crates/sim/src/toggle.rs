//! Toggle-activity collection (the step-1 metric of the paper's Fig. 3).

use soctest_netlist::{NetId, Netlist};

/// Accumulates per-net activity while a simulation runs.
///
/// After sampling, [`ToggleMonitor::report`] gives the *toggle activity*:
/// the percentage of nets that were observed at both logic values — the
/// RTL-level confidence metric the paper pairs with statement coverage in
/// its first evaluation step.
#[derive(Debug, Clone)]
pub struct ToggleMonitor {
    seen0: Vec<bool>,
    seen1: Vec<bool>,
    transitions: Vec<u64>,
    prev: Vec<u64>,
    samples: u64,
}

impl ToggleMonitor {
    /// Creates a monitor sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.len();
        ToggleMonitor {
            seen0: vec![false; n],
            seen1: vec![false; n],
            transitions: vec![0; n],
            prev: vec![0; n],
            samples: 0,
        }
    }

    /// Samples the full value buffer of a simulator after an evaluation.
    ///
    /// `values[net]` is the 64-lane word of each net; all lanes contribute
    /// to 0/1 observation, and lane-wise flips against the previous sample
    /// contribute to the transition counts.
    pub fn sample(&mut self, values: &[u64]) {
        for (i, &w) in values.iter().enumerate() {
            if w != 0 {
                self.seen1[i] = true;
            }
            if w != u64::MAX {
                self.seen0[i] = true;
            }
            if self.samples > 0 {
                self.transitions[i] += (w ^ self.prev[i]).count_ones() as u64;
            }
            self.prev[i] = w;
        }
        self.samples += 1;
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether a given net toggled (saw both values).
    pub fn toggled(&self, net: NetId) -> bool {
        self.seen0[net.index()] && self.seen1[net.index()]
    }

    /// Produces the aggregate report.
    pub fn report(&self) -> ToggleReport {
        let total = self.seen0.len();
        let toggled = (0..total)
            .filter(|&i| self.seen0[i] && self.seen1[i])
            .count();
        let stuck_at_0 = (0..total)
            .filter(|&i| self.seen0[i] && !self.seen1[i])
            .count();
        let stuck_at_1 = (0..total)
            .filter(|&i| !self.seen0[i] && self.seen1[i])
            .count();
        let transitions = self.transitions.iter().sum();
        ToggleReport {
            nets: total,
            toggled,
            never_high: stuck_at_0,
            never_low: stuck_at_1,
            transitions,
            samples: self.samples,
        }
    }

    /// Nets that never toggled, for designer feedback (paper §3.2: "redefine
    /// the Constraints Generator" when activity is too low).
    pub fn untoggled_nets(&self) -> Vec<NetId> {
        (0..self.seen0.len())
            .filter(|&i| !(self.seen0[i] && self.seen1[i]))
            .map(|i| NetId(i as u32))
            .collect()
    }
}

/// Aggregate toggle-activity numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleReport {
    /// Total nets observed.
    pub nets: usize,
    /// Nets seen at both 0 and 1.
    pub toggled: usize,
    /// Nets only ever seen at 0.
    pub never_high: usize,
    /// Nets only ever seen at 1.
    pub never_low: usize,
    /// Total lane-wise value changes across all samples.
    pub transitions: u64,
    /// Number of samples contributing.
    pub samples: u64,
}

impl ToggleReport {
    /// Toggle activity as a percentage of all nets.
    pub fn activity_percent(&self) -> f64 {
        if self.nets == 0 {
            return 0.0;
        }
        100.0 * self.toggled as f64 / self.nets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqSim;
    use soctest_netlist::ModuleBuilder;

    #[test]
    fn counter_eventually_toggles_low_bits() {
        let mut mb = ModuleBuilder::new("cnt");
        let en = mb.input("en");
        let clr = mb.input("clr");
        let q = mb.counter(4, en, clr);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();

        let mut sim = SeqSim::new(&nl).unwrap();
        let mut mon = ToggleMonitor::new(&nl);
        sim.drive_port("en", 1);
        sim.drive_port("clr", 0);
        for _ in 0..20 {
            sim.eval_comb();
            mon.sample(sim.comb().values());
            sim.clock();
        }
        let q0 = nl.port("q").unwrap().bits()[0];
        let q3 = nl.port("q").unwrap().bits()[3];
        assert!(mon.toggled(q0));
        assert!(mon.toggled(q3), "bit 3 toggles at count 8..16");
        let rep = mon.report();
        assert!(rep.activity_percent() > 50.0);
        assert_eq!(rep.samples, 20);
    }

    #[test]
    fn idle_circuit_reports_low_activity() {
        let mut mb = ModuleBuilder::new("idle");
        let a = mb.input("a");
        let q = mb.register(&[a]);
        mb.output_bus("q", &q);
        let nl = mb.finish().unwrap();
        let mut sim = SeqSim::new(&nl).unwrap();
        let mut mon = ToggleMonitor::new(&nl);
        sim.set_input_bit(nl.port("a").unwrap().bits()[0], false);
        for _ in 0..4 {
            sim.eval_comb();
            mon.sample(sim.comb().values());
            sim.clock();
        }
        let rep = mon.report();
        assert_eq!(rep.toggled, 0);
        assert!(!mon.untoggled_nets().is_empty());
    }
}
