//! Streaming quantile sketches: the P² algorithm (Jain & Chlamtac 1985).
//!
//! A [`P2Quantile`] estimates one quantile of an unbounded stream with
//! **five markers and zero allocation after construction** — the whole
//! state is five heights, five positions, and five desired positions.
//! That makes it the right shape for the fleet health monitor, which
//! needs p50/p95/p99 of per-die test time *while the campaign runs*,
//! on the hot path, without buffering the population.
//!
//! Determinism contract: the estimate is a pure function of the insert
//! sequence. All arithmetic is plain `f64` in a fixed order, so two runs
//! that feed the same values in the same order (the fleet feeds dies in
//! index order regardless of worker count) produce bit-identical
//! estimates.
//!
//! Accuracy: exact until five observations have arrived (the sketch
//! falls back to sorting its first five), then an interpolated estimate
//! whose error on the fleet's TCK distributions is asserted against the
//! exact nearest-rank percentiles in `tests/health.rs`.

/// A single-quantile P² estimator: fixed five-marker state, O(1) insert.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    /// The target quantile in (0, 1), e.g. `0.95`.
    q: f64,
    /// Marker heights (estimated values at the marker positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// A sketch targeting quantile `q`, clamped into `[0.001, 0.999]`.
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.001, 0.999);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile this sketch tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Inserts one observation. O(1), allocation-free.
    pub fn insert(&mut self, value: f64) {
        let n = self.count as usize;
        self.count += 1;
        // Warm-up: collect the first five observations sorted.
        if n < 5 {
            self.heights[n] = value;
            let filled = &mut self.heights[..=n];
            filled.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            return;
        }

        // Find the cell the observation falls into, stretching the end
        // markers to keep them true extremes.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value < self.heights[1] {
            0
        } else if value < self.heights[2] {
            1
        } else if value < self.heights[3] {
            2
        } else if value <= self.heights[4] {
            3
        } else {
            self.heights[4] = value;
            3
        };

        // Shift the actual positions of every marker above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        // Advance every desired position by its increment.
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers toward their desired
        // positions — parabolic (P²) when the neighbor spacing allows,
        // linear otherwise.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate. Exact (sorted nearest-rank over the
    /// buffered values) until five observations have arrived; `0.0` on an
    /// empty sketch.
    pub fn value(&self) -> f64 {
        let n = self.count as usize;
        if n == 0 {
            return 0.0;
        }
        if n < 5 {
            // Nearest-rank over the sorted warm-up buffer.
            let rank = ((n as f64 * self.q).ceil() as usize).clamp(1, n);
            return self.heights[rank - 1];
        }
        self.heights[2]
    }
}

/// A p50/p95/p99 bundle over one stream — the shape the fleet monitor
/// feeds per-die TCK into.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileTrio {
    /// The median estimator.
    pub p50: P2Quantile,
    /// The 95th-percentile estimator.
    pub p95: P2Quantile,
    /// The 99th-percentile estimator.
    pub p99: P2Quantile,
}

impl Default for QuantileTrio {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileTrio {
    /// A fresh p50/p95/p99 trio.
    pub fn new() -> Self {
        QuantileTrio {
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Feeds one observation to all three estimators.
    pub fn insert(&mut self, value: f64) {
        self.p50.insert(value);
        self.p95.insert(value);
        self.p99.insert(value);
    }

    /// Observations inserted so far.
    pub fn count(&self) -> u64 {
        self.p50.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile, the oracle the sketch is judged by.
    fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn relative_error(estimate: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            estimate.abs()
        } else {
            (estimate - exact).abs() / exact.abs()
        }
    }

    #[test]
    fn exact_below_five_observations() {
        let mut s = P2Quantile::new(0.5);
        assert_eq!(s.value(), 0.0);
        s.insert(10.0);
        assert_eq!(s.value(), 10.0);
        s.insert(2.0);
        s.insert(6.0);
        // Nearest-rank median of {2, 6, 10} is 6.
        assert_eq!(s.value(), 6.0);
    }

    #[test]
    fn uniform_ramp_converges() {
        // A deterministic scrambled ramp: i * 7919 mod 10007 visits every
        // residue once, so the exact quantiles are known.
        let values: Vec<f64> = (0..10_007u64).map(|i| (i * 7919 % 10_007) as f64).collect();
        for q in [0.5, 0.95, 0.99] {
            let mut sketch = P2Quantile::new(q);
            for &v in &values {
                sketch.insert(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = nearest_rank(&sorted, q);
            assert!(
                relative_error(sketch.value(), exact) < 0.02,
                "q={q}: sketch {} vs exact {exact}",
                sketch.value()
            );
        }
    }

    #[test]
    fn heavily_repeated_values_stay_pinned() {
        // The fleet's TCK distribution is nearly degenerate: most dies
        // share one value. The sketch must not drift off the atom.
        let mut trio = QuantileTrio::new();
        for i in 0..10_000u64 {
            // 97% at 1000, 3% spread high — mirrors clean vs defective.
            let v = if i % 100 < 97 {
                1000.0
            } else {
                5000.0 + (i % 7) as f64 * 100.0
            };
            trio.insert(v);
        }
        assert!(
            (trio.p50.value() - 1000.0).abs() < 1.0,
            "{}",
            trio.p50.value()
        );
        // p95 sits inside the 97% atom.
        assert!((trio.p95.value() - 1000.0).abs() / 1000.0 < 0.05);
        assert_eq!(trio.count(), 10_000);
    }

    #[test]
    fn insert_order_determinism() {
        let feed = |xs: &[f64]| {
            let mut s = P2Quantile::new(0.95);
            for &x in xs {
                s.insert(x);
            }
            s.value()
        };
        let values: Vec<f64> = (0..997u64).map(|i| (i * 31 % 997) as f64).collect();
        assert_eq!(feed(&values).to_bits(), feed(&values).to_bits());
    }

    #[test]
    fn extremes_track_min_and_max() {
        let mut s = P2Quantile::new(0.5);
        for v in [5.0, 1.0, 9.0, 3.0, 7.0, 0.5, 10.0, 2.0] {
            s.insert(v);
        }
        assert_eq!(s.heights[0], 0.5, "min marker stretches down");
        assert_eq!(s.heights[4], 10.0, "max marker stretches up");
        assert!(s.value() >= 0.5 && s.value() <= 10.0);
    }
}
