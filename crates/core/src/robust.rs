//! Fault-tolerant test sessions: watchdogs, retry-with-reseed, and
//! per-module quarantine.
//!
//! A plain TAP session ([`crate::session`]) assumes everything works: the
//! engine finishes, the scans are clean, and a signature mismatch is a
//! verdict. A production ATE cannot assume any of that. [`RobustSession`]
//! wraps the same protocol in the defensive loop of the paper's Fig. 4
//! applied at *test time* instead of design time:
//!
//! * every wait on `end_test` runs under a burst budget, and the whole
//!   session under a TCK watchdog ([`SessionBudget`]) — a hung engine
//!   surfaces as a typed error, never an endless poll;
//! * WDR status reads are majority-voted
//!   ([`soctest_p1500::TapDriver::read_status_voted`]), so a transient
//!   upset on one scan cannot fail a good module;
//! * a signature mismatch is retried up the [`RetryStrategy`] ladder —
//!   re-run, switch to the reciprocal primitive polynomial, re-seed — each
//!   retry re-rehearsing the golden signature under the same knobs. Only a
//!   mismatch that *reproduces under every strategy* quarantines the
//!   module; anything that clears was aliasing or noise;
//! * the result is a structured [`SessionReport`]: per-module attempt
//!   history, the quarantine list, and the TCK/functional-cycle bill.

use soctest_bist::EngineError;
use soctest_fault::ParallelPolicy;
use soctest_p1500::{ProtocolError, TapDriver};

use crate::casestudy::CaseStudy;
use crate::error::SessionError;
use crate::eval::{self, FaultModel, Step3Report};
use crate::session::WrappedCore;

/// Watchdog and protocol budgets for one robust session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBudget {
    /// Hard ceiling on TCK cycles across all attempts; exceeding it aborts
    /// the session with [`SessionError::TckBudgetExceeded`].
    pub max_tck: u64,
    /// Functional cycles per burst while polling `end_test`.
    pub burst: u64,
    /// Maximum polling bursts per attempt before the engine is declared
    /// hung.
    pub max_bursts: u32,
    /// WDR reads per status query; the majority value wins.
    pub status_votes: u32,
}

impl Default for SessionBudget {
    fn default() -> Self {
        SessionBudget {
            max_tck: 100_000,
            burst: 64,
            max_bursts: 80,
            status_votes: 3,
        }
    }
}

/// One rung of the retry ladder: how to re-run a session whose signature
/// mismatched, to separate real faults from aliasing and noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryStrategy {
    /// The baseline configuration (default polynomial, default seed).
    Rerun,
    /// The reciprocal primitive polynomial at the same width — a different
    /// maximal-length sequence over the same state space, so an aliasing
    /// collision under the first polynomial almost surely breaks.
    ReciprocalPolynomial,
    /// The default polynomial started from a different seed.
    Reseed(u64),
}

impl RetryStrategy {
    /// The `(variant, seed)` engine knobs this strategy turns (see
    /// [`CaseStudy::engine_variant`]).
    fn engine_knobs(self) -> (u8, u64) {
        match self {
            RetryStrategy::Rerun => (0, 0),
            RetryStrategy::ReciprocalPolynomial => (1, 0),
            RetryStrategy::Reseed(seed) => (0, seed),
        }
    }
}

/// One attempt at one module: the strategy used, the golden signature the
/// rehearsal predicted, and the signature the DUT produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptRecord {
    /// The retry rung this attempt ran under.
    pub strategy: RetryStrategy,
    /// The fault-free signature from the rehearsal.
    pub golden: u64,
    /// The signature read back from the DUT over the TAP.
    pub signature: u64,
}

impl AttemptRecord {
    /// Whether the DUT matched the rehearsal.
    pub fn matched(&self) -> bool {
        self.golden == self.signature
    }
}

/// The verdict on one module after the retry ladder.
#[derive(Debug, Clone)]
pub struct ModuleOutcome {
    /// Module name.
    pub module: String,
    /// `true` when every strategy reproduced a mismatch: the module is
    /// excluded from service pending diagnosis.
    pub quarantined: bool,
    /// Every attempt made on this module, in ladder order.
    pub attempts: Vec<AttemptRecord>,
}

/// The structured outcome of a robust session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Per-module verdicts, in module order.
    pub outcomes: Vec<ModuleOutcome>,
    /// TCK cycles spent across all attempts.
    pub tck_spent: u64,
    /// Functional (at-speed) cycles spent across all attempts.
    pub functional_cycles: u64,
    /// Patterns per execution.
    pub patterns: u64,
}

impl SessionReport {
    /// `true` when no module was quarantined.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| !o.quarantined)
    }

    /// Names of the quarantined modules.
    pub fn quarantined(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.quarantined)
            .map(|o| o.module.as_str())
            .collect()
    }
}

/// One quarantined module's post-session diagnosis: the step-3 equivalent
/// fault-class statistics, computed by fault-simulating the module with
/// syndrome collection under the BIST pattern generator.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Module name (matches [`SessionReport::quarantined`]).
    pub module: String,
    /// The step-3 diagnostic report for this module.
    pub report: Step3Report,
}

/// A fault-tolerant test session runner. Build one with a budget, then
/// [`RobustSession::run`] it against a device under test.
#[derive(Debug, Clone)]
pub struct RobustSession {
    budget: SessionBudget,
    strategies: Vec<RetryStrategy>,
    parallel: ParallelPolicy,
}

impl Default for RobustSession {
    fn default() -> Self {
        Self::new(SessionBudget::default())
    }
}

impl RobustSession {
    /// A session with the default retry ladder: re-run, reciprocal
    /// polynomial, re-seed.
    pub fn new(budget: SessionBudget) -> Self {
        RobustSession {
            budget,
            strategies: vec![
                RetryStrategy::Rerun,
                RetryStrategy::ReciprocalPolynomial,
                RetryStrategy::Reseed(0x5EED_CAFE),
            ],
            parallel: ParallelPolicy::default(),
        }
    }

    /// Sets the worker-thread policy used by [`RobustSession::diagnose`]'s
    /// fault simulations. The session protocol itself is single-threaded
    /// (it models one serial TAP); only diagnosis fans out.
    pub fn with_parallelism(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Replaces the retry ladder. An empty ladder is promoted to a single
    /// [`RetryStrategy::Rerun`] so a session always makes one attempt.
    pub fn with_strategies(mut self, strategies: Vec<RetryStrategy>) -> Self {
        self.strategies = if strategies.is_empty() {
            vec![RetryStrategy::Rerun]
        } else {
            strategies
        };
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> SessionBudget {
        self.budget
    }

    /// Runs the full session: for each rung of the retry ladder (while any
    /// module is still unresolved), rehearse the golden signatures on the
    /// fault-free `reference` hardware, run the same session on the `dut`
    /// through the TAP, and compare per-module signatures via majority-voted
    /// WDR reads. A module passes at its first matching attempt; a module
    /// whose mismatch reproduces under every strategy is quarantined.
    ///
    /// # Errors
    ///
    /// * [`SessionError::Engine`] with [`EngineError::Hung`] when the
    ///   engine (golden or DUT) never raises `end_test` within the burst
    ///   budget — a hang is an infrastructure failure, not a module
    ///   verdict;
    /// * [`SessionError::TckBudgetExceeded`] when the accumulated TCK cost
    ///   crosses [`SessionBudget::max_tck`];
    /// * protocol errors (e.g. no status-read majority) from the TAP layer.
    pub fn run(
        &self,
        reference: &CaseStudy,
        dut: &CaseStudy,
        npatterns: u64,
    ) -> Result<SessionReport, SessionError> {
        let nmodules = dut.modules().len();
        let mut attempts: Vec<Vec<AttemptRecord>> = vec![Vec::new(); nmodules];
        let mut resolved: Vec<bool> = vec![false; nmodules];
        let mut tck_spent = 0u64;
        let mut functional_cycles = 0u64;

        for &strategy in &self.strategies {
            if resolved.iter().all(|&r| r) {
                break;
            }
            let (variant, seed) = strategy.engine_knobs();

            // Golden signatures: a fresh rehearsal of the fault-free
            // hardware under this strategy's polynomial and seed.
            let golden_engine = reference.engine_variant(variant, seed)?;
            let mut rehearsal = WrappedCore::with_engine(reference, golden_engine)?;
            let goldens = rehearsal.rehearse(npatterns)?;

            // The DUT session, driven over the TAP.
            let dut_engine = dut.engine_variant(variant, seed)?;
            let backend = WrappedCore::with_engine(dut, dut_engine)?;
            let mut ate = TapDriver::new(backend);
            ate.reset();
            ate.bist_load_pattern_count(npatterns);
            ate.bist_start();
            match ate.wait_for_done(self.budget.burst, self.budget.max_bursts) {
                Ok(_) => {}
                Err(ProtocolError::DoneTimeout { cycles_waited, .. }) => {
                    // At session level a timeout is a hung engine: the poll
                    // budget covered the whole pattern count.
                    return Err(EngineError::Hung {
                        cycles: cycles_waited,
                    }
                    .into());
                }
                Err(e) => return Err(e.into()),
            }

            for (m, &golden) in goldens.iter().enumerate().take(nmodules) {
                if resolved[m] {
                    continue;
                }
                ate.bist_select_result(m as u8);
                let (_, signature) = ate.read_status_voted(self.budget.status_votes)?;
                let record = AttemptRecord {
                    strategy,
                    golden,
                    signature,
                };
                attempts[m].push(record);
                if record.matched() {
                    resolved[m] = true;
                }
            }

            tck_spent += ate.tck();
            functional_cycles += ate.functional_cycles();
            if tck_spent > self.budget.max_tck {
                return Err(SessionError::TckBudgetExceeded {
                    spent: tck_spent,
                    budget: self.budget.max_tck,
                });
            }
        }

        let outcomes = dut
            .module_names()
            .into_iter()
            .zip(attempts)
            .zip(&resolved)
            .map(|((name, attempts), &passed)| ModuleOutcome {
                module: name.to_owned(),
                quarantined: !passed,
                attempts,
            })
            .collect();
        Ok(SessionReport {
            outcomes,
            tck_spent,
            functional_cycles,
            patterns: npatterns,
        })
    }

    /// Diagnoses the quarantined modules of a finished session: each one is
    /// fault-simulated (stuck-at, MISR-observed, syndrome-collecting) under
    /// the BIST pattern generator and reduced to its step-3 equivalent
    /// fault-class statistics — the shortlist a failure analyst would start
    /// from. Healthy modules are skipped; a clean report returns an empty
    /// vector.
    ///
    /// The simulations run under this session's [`ParallelPolicy`] (see
    /// [`RobustSession::with_parallelism`]).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the underlying step-3 runs.
    pub fn diagnose(
        &self,
        case: &CaseStudy,
        report: &SessionReport,
        npatterns: u64,
    ) -> Result<Vec<Diagnosis>, SessionError> {
        let names = case.module_names();
        let mut out = Vec::new();
        for outcome in &report.outcomes {
            if !outcome.quarantined {
                continue;
            }
            let Some(m) = names.iter().position(|n| *n == outcome.module) else {
                continue;
            };
            let step3 = eval::step3(
                case,
                m,
                FaultModel::StuckAt,
                npatterns,
                (npatterns / 16).max(1),
                1,
                self.parallel,
            )?;
            out.push(Diagnosis {
                module: outcome.module.clone(),
                report: step3,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_hardware_passes_on_the_first_rung() {
        let reference = CaseStudy::paper().unwrap();
        let dut = CaseStudy::paper().unwrap();
        let report = RobustSession::default().run(&reference, &dut, 64).unwrap();
        assert!(report.all_passed());
        assert!(report.quarantined().is_empty());
        for outcome in &report.outcomes {
            assert_eq!(outcome.attempts.len(), 1, "no retries needed");
            assert_eq!(outcome.attempts[0].strategy, RetryStrategy::Rerun);
            assert!(outcome.attempts[0].matched());
        }
        assert!(report.tck_spent > 0);
        assert!(report.functional_cycles >= 64);
        assert_eq!(report.patterns, 64);
    }

    #[test]
    fn tck_watchdog_aborts_an_over_budget_session() {
        let reference = CaseStudy::paper().unwrap();
        let dut = CaseStudy::paper().unwrap();
        let session = RobustSession::new(SessionBudget {
            max_tck: 10,
            ..SessionBudget::default()
        });
        match session.run(&reference, &dut, 64) {
            Err(SessionError::TckBudgetExceeded { spent, budget }) => {
                assert!(spent > budget);
                assert_eq!(budget, 10);
            }
            other => panic!("expected a budget error, got {other:?}"),
        }
    }

    #[test]
    fn zero_patterns_hang_is_typed() {
        let reference = CaseStudy::paper().unwrap();
        let dut = CaseStudy::paper().unwrap();
        match RobustSession::default().run(&reference, &dut, 0) {
            Err(SessionError::Engine(EngineError::Hung { .. })) => {}
            other => panic!("expected a Hung error, got {other:?}"),
        }
    }

    #[test]
    fn clean_report_diagnoses_nothing() {
        let reference = CaseStudy::paper().unwrap();
        let dut = CaseStudy::paper().unwrap();
        let session = RobustSession::default();
        let report = session.run(&reference, &dut, 64).unwrap();
        let diagnoses = session.diagnose(&reference, &report, 64).unwrap();
        assert!(diagnoses.is_empty());
    }

    #[test]
    fn quarantined_module_gets_a_diagnosis() {
        let reference = CaseStudy::paper().unwrap();
        let mut dut = CaseStudy::paper().unwrap();
        let victim = dut.modules()[2].primary_outputs()[0];
        dut.module_mut(2).force_constant(victim, true);
        let session = RobustSession::default().with_parallelism(ParallelPolicy::serial());
        let report = session.run(&reference, &dut, 96).unwrap();
        assert_eq!(report.quarantined(), vec!["CONTROL_UNIT"]);

        let diagnoses = session.diagnose(&reference, &report, 96).unwrap();
        assert_eq!(diagnoses.len(), 1);
        assert_eq!(diagnoses[0].module, "CONTROL_UNIT");
        assert!(diagnoses[0].report.faults > 0);
        assert!(diagnoses[0].report.stats.classes > 0);
    }

    #[test]
    fn empty_ladder_is_promoted_to_one_attempt() {
        let session = RobustSession::default().with_strategies(Vec::new());
        let reference = CaseStudy::paper().unwrap();
        let dut = CaseStudy::paper().unwrap();
        let report = session.run(&reference, &dut, 64).unwrap();
        assert!(report.all_passed());
        assert_eq!(report.outcomes[0].attempts.len(), 1);
    }
}
