//! Live BIST sessions: the behavioral engine co-simulated against the
//! module netlists, pluggable behind the P1500 wrapper.

use soctest_bist::{BistCommand, BistEngine, EngineError};
use soctest_netlist::{NetId, Netlist};
use soctest_obs::TraceHandle;
use soctest_p1500::BistBackend;
use soctest_sim::{SeqSim, VcdProbe};

use crate::casestudy::CaseStudy;
use crate::error::SessionError;

/// The wrapped core: the BIST engine and one gate-level simulator per
/// module, advancing in lock-step. Implements [`BistBackend`], so a
/// [`soctest_p1500::TapDriver`] can run complete test sessions against it
/// — load pattern count, start, burst at speed, read signatures.
#[derive(Debug)]
pub struct WrappedCore<'a> {
    engine: BistEngine,
    sims: Vec<SeqSim<'a>>,
    inputs: Vec<Vec<NetId>>,
    outputs: Vec<Vec<NetId>>,
    vcd: Option<VcdProbe>,
    vcd_groups: Vec<usize>,
    functional_cycle: u64,
}

impl<'a> WrappedCore<'a> {
    /// Builds the backend for a case study.
    ///
    /// # Errors
    ///
    /// Propagates simulator-construction errors.
    pub fn new(case: &'a CaseStudy) -> Result<Self, SessionError> {
        Self::with_engine(case, case.engine())
    }

    /// Builds the backend with a caller-supplied engine — e.g. one from
    /// [`CaseStudy::engine_variant`] with an alternate polynomial or seed,
    /// as a robust session's retry ladder does.
    ///
    /// # Errors
    ///
    /// Propagates simulator-construction errors.
    pub fn with_engine(case: &'a CaseStudy, engine: BistEngine) -> Result<Self, SessionError> {
        let mut sims = Vec::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for module in case.modules() {
            sims.push(SeqSim::new(module)?);
            inputs.push(module.primary_inputs());
            outputs.push(module.primary_outputs());
        }
        Ok(WrappedCore {
            engine,
            sims,
            inputs,
            outputs,
            vcd: None,
            vcd_groups: Vec::new(),
            functional_cycle: 0,
        })
    }

    /// Attaches a trace handle to the embedded engine (BIST commands and
    /// MISR snapshots at read boundaries).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.engine.set_trace(trace);
    }

    /// Starts recording a VCD waveform of every module's ports, one
    /// timestep per functional clock. Module *m* appears as scope
    /// `m<m>_<module name>`; the timeline is monotonic across resets.
    pub fn enable_vcd(&mut self) {
        let mut probe = VcdProbe::new();
        let mut groups = Vec::with_capacity(self.sims.len());
        for (m, sim) in self.sims.iter().enumerate() {
            let nl = sim.netlist();
            groups.push(probe.add_module(&format!("m{m}_{}", nl.name()), nl));
        }
        self.vcd = Some(probe);
        self.vcd_groups = groups;
    }

    /// Stops recording and returns the rendered VCD document, or `None` if
    /// [`WrappedCore::enable_vcd`] was never called.
    pub fn take_vcd(&mut self) -> Option<String> {
        self.vcd_groups.clear();
        self.vcd.take().map(|p| p.finish())
    }

    /// The engine (e.g. to inspect per-module signatures).
    pub fn engine(&self) -> &BistEngine {
        &self.engine
    }

    /// The module netlists being exercised.
    pub fn netlists(&self) -> Vec<&Netlist> {
        self.sims.iter().map(|s| s.netlist()).collect()
    }

    /// Runs a complete fault-free session (reset → load → start → run to
    /// completion) and returns every module's signature. Used to compute
    /// golden signatures.
    ///
    /// # Errors
    ///
    /// [`SessionError::Engine`] with [`EngineError::Hung`] if the engine
    /// never raises `end_test` within the `npatterns + 4` cycle watchdog —
    /// e.g. a session started with a pattern count of zero, which the
    /// control unit ignores. Earlier versions silently returned the
    /// power-on signatures here, which compared equal between a golden
    /// rehearsal and a defective DUT: a hung session looked like a pass.
    pub fn rehearse(&mut self, npatterns: u64) -> Result<Vec<u64>, SessionError> {
        self.command(BistCommand::Reset);
        self.command(BistCommand::LoadPatternCount(npatterns));
        self.command(BistCommand::Start);
        for sim in &mut self.sims {
            sim.reset();
        }
        let budget = npatterns + 4;
        let mut spent = 0u64;
        while !self.engine.control().end_test() {
            if spent >= budget {
                return Err(EngineError::Hung { cycles: spent }.into());
            }
            self.functional_clock();
            spent += 1;
        }
        Ok((0..self.sims.len())
            .map(|m| self.engine.signature(m))
            .collect())
    }
}

impl BistBackend for WrappedCore<'_> {
    fn command(&mut self, cmd: BistCommand) {
        // A reset command also returns the modules to their power-on state
        // (the BIST clr pulse would do this in silicon over a few cycles).
        if cmd == BistCommand::Reset {
            for sim in &mut self.sims {
                sim.reset();
            }
        }
        self.engine.command(cmd);
    }

    fn functional_clock(&mut self) {
        if !self.engine.control().test_enable() {
            return;
        }
        let mut responses = Vec::with_capacity(self.sims.len());
        for (m, sim) in self.sims.iter_mut().enumerate() {
            let row = self.engine.inputs(m);
            for (&net, &bit) in self.inputs[m].iter().zip(&row) {
                sim.set_input_bit(net, bit);
            }
            sim.eval_comb();
            let outs: Vec<bool> = self.outputs[m]
                .iter()
                .map(|&net| sim.get(net) & 1 == 1)
                .collect();
            if let Some(probe) = self.vcd.as_mut() {
                probe.record(self.vcd_groups[m], sim);
            }
            sim.clock();
            responses.push(outs);
        }
        if let Some(probe) = self.vcd.as_mut() {
            probe.advance(self.functional_cycle);
        }
        self.functional_cycle += 1;
        self.engine.clock(&responses);
    }

    fn end_test(&self) -> bool {
        self.engine.control().end_test()
    }

    fn selected_signature(&self) -> u64 {
        self.engine.selected_signature()
    }

    fn signature_width(&self) -> usize {
        self.engine.misr_width()
    }
}

impl crate::robust::SessionBackend for WrappedCore<'_> {
    fn set_trace(&mut self, trace: TraceHandle) {
        WrappedCore::set_trace(self, trace);
    }

    fn enable_vcd(&mut self) {
        WrappedCore::enable_vcd(self);
    }

    fn take_vcd(&mut self) -> Option<String> {
        WrappedCore::take_vcd(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_p1500::TapDriver;

    #[test]
    fn rehearsal_is_deterministic() {
        let case = CaseStudy::paper().unwrap();
        let mut a = WrappedCore::new(&case).unwrap();
        let mut b = WrappedCore::new(&case).unwrap();
        assert_eq!(a.rehearse(128).unwrap(), b.rehearse(128).unwrap());
    }

    #[test]
    fn signatures_depend_on_length() {
        let case = CaseStudy::paper().unwrap();
        let mut w = WrappedCore::new(&case).unwrap();
        let short = w.rehearse(64).unwrap();
        let long = w.rehearse(65).unwrap();
        assert_ne!(short, long);
    }

    #[test]
    fn rehearsal_can_be_repeated_on_the_same_backend() {
        let case = CaseStudy::paper().unwrap();
        let mut w = WrappedCore::new(&case).unwrap();
        let first = w.rehearse(100).unwrap();
        let second = w.rehearse(100).unwrap();
        assert_eq!(first, second, "reset must clear all state");
    }

    #[test]
    fn zero_pattern_rehearsal_is_a_typed_hang() {
        let case = CaseStudy::paper().unwrap();
        let mut w = WrappedCore::new(&case).unwrap();
        // The control unit ignores Start with a zero pattern count, so
        // end_test never rises; the watchdog must say so instead of
        // returning power-on signatures.
        match w.rehearse(0) {
            Err(SessionError::Engine(EngineError::Hung { cycles })) => {
                assert!(cycles <= 4, "watchdog fires at the budget, got {cycles}");
            }
            other => panic!("expected a Hung error, got {other:?}"),
        }
        // The backend stays usable afterwards.
        assert!(w.rehearse(64).is_ok());
    }

    #[test]
    fn variant_engines_give_different_signatures() {
        let case = CaseStudy::paper().unwrap();
        let golden = case.golden_signatures(64).unwrap();
        let alt = case.engine_variant(1, 0).unwrap();
        let mut w = WrappedCore::with_engine(&case, alt).unwrap();
        let recip = w.rehearse(64).unwrap();
        assert_ne!(golden, recip, "reciprocal polynomial changes the stream");
        let seeded = case.engine_variant(0, 0xBEEF).unwrap();
        let mut w = WrappedCore::with_engine(&case, seeded).unwrap();
        let reseeded = w.rehearse(64).unwrap();
        assert_ne!(golden, reseeded, "reseeding changes the stream");
    }

    #[test]
    fn tap_session_matches_rehearsal() {
        let case = CaseStudy::paper().unwrap();
        let golden = case.golden_signatures(96).unwrap();
        let backend = WrappedCore::new(&case).unwrap();
        let mut ate = TapDriver::new(backend);
        ate.reset();
        ate.bist_load_pattern_count(96);
        ate.bist_start();
        let stats = ate.wait_for_done(32, 10).unwrap();
        assert!(
            stats.cycles_waited >= 96,
            "at least npatterns functional cycles"
        );
        for (m, &gold) in golden.iter().enumerate() {
            ate.bist_select_result(m as u8);
            let (done, sig) = ate.read_status();
            assert!(done);
            assert_eq!(sig, gold, "module {m} signature");
        }
        assert!(ate.tck() > 100, "protocol cost is accounted");
    }
}
