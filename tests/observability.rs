//! Observability integration tests: one fault-tolerant session against a
//! planted stuck-at defect must yield all three artifacts — a JSON-Lines
//! event trace telling the watchdog/retry/quarantine story, a Prometheus
//! metrics snapshot, and a loadable VCD waveform — plus a golden-trace
//! snapshot that pins the session-level event sequence.

use std::io::Write;
use std::sync::{Arc, Mutex};

use soctest::core::casestudy::CaseStudy;
use soctest::core::robust::RobustSession;
use soctest::obs::{
    json, JsonLinesSink, MetricsHandle, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceHandle,
    Tracer, VcdReader,
};

/// A `Write` target the test can read back after the tracer consumed the
/// sink (`JsonLinesSink` owns its writer).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn defective_dut() -> (CaseStudy, CaseStudy) {
    let reference = CaseStudy::paper().unwrap();
    let mut dut = CaseStudy::paper().unwrap();
    let victim = dut.modules()[2].primary_outputs()[0];
    dut.module_mut(2).force_constant(victim, true);
    (reference, dut)
}

/// The headline acceptance test: one robust session against a stuck-at
/// fault produces a JSONL trace with the watchdog/retry/quarantine
/// sequence, a Prometheus metrics snapshot that round-trips through the
/// in-tree parser, and a loadable VCD — all from the same run.
#[test]
fn one_session_yields_trace_metrics_and_waveform() {
    let (reference, dut) = defective_dut();

    let buf = SharedBuf::default();
    let shared = Arc::clone(&buf.0);
    let mut tracer = Tracer::new(8192);
    tracer.add_sink(Box::new(JsonLinesSink::new(buf)));
    let registry = Arc::new(MetricsRegistry::new());

    let session = RobustSession::default()
        .with_trace(TraceHandle::new(tracer))
        .with_metrics(MetricsHandle::from_arc(Arc::clone(&registry)))
        .with_vcd(true);
    let report = session.run(&reference, &dut, 64).unwrap();
    assert_eq!(report.quarantined(), vec!["CONTROL_UNIT"]);

    // --- JSONL trace: every line parses, and the story reads in order.
    let bytes = shared.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let mut names = Vec::new();
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        names.push(v.get("event").and_then(|e| e.as_str()).unwrap().to_owned());
    }
    let first = |name: &str| {
        names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("trace must contain {name}"))
    };
    assert_eq!(first("SessionStart"), 0, "the session announces itself");
    let attempt = first("AttemptResult");
    let escalation = first("RetryEscalation");
    let quarantine = first("Quarantine");
    assert!(
        attempt < escalation && escalation < quarantine,
        "attempt → escalation → quarantine, got {attempt}/{escalation}/{quarantine}"
    );
    assert!(names.iter().any(|n| n == "WatchdogCheck"));
    assert!(names.iter().any(|n| n == "ModuleCleared"));
    assert!(names.iter().any(|n| n == "TapStateChange"));
    assert!(names.iter().any(|n| n == "WirLoad"));
    assert!(names.iter().any(|n| n == "MisrSnapshot"));

    // --- Metrics: exposition round-trips and records the verdict.
    let snap = registry.snapshot();
    let parsed = MetricsSnapshot::parse_prometheus(&snap.to_prometheus()).unwrap();
    assert_eq!(parsed.counters, snap.counters);
    assert_eq!(parsed.counters.get("session_quarantines_total"), Some(&1));
    assert_eq!(
        parsed.counters.get("session_tck_total"),
        Some(&report.tck_spent)
    );
    assert!(parsed.counters.get("wir_loads_total").copied().unwrap_or(0) > 0);
    json::parse(&snap.to_json()).unwrap();

    // --- Waveform: loads, and carries every module's ports.
    let vcd = report.vcd.as_deref().unwrap();
    let reader = VcdReader::parse(vcd).unwrap();
    for (m, module) in dut.modules().iter().enumerate() {
        let port = module.ports()[0].name();
        assert!(
            reader
                .value_at(&format!("m{m}_{}.{port}", module.name()), 0)
                .is_some(),
            "module {m} is in the waveform"
        );
    }
}

fn session_level(event: &TraceEvent) -> bool {
    matches!(
        event,
        TraceEvent::SessionStart { .. }
            | TraceEvent::AttemptResult { .. }
            | TraceEvent::RetryEscalation { .. }
            | TraceEvent::WatchdogCheck { .. }
            | TraceEvent::WatchdogFired { .. }
            | TraceEvent::Quarantine { .. }
            | TraceEvent::ModuleCleared { .. }
    )
}

/// Golden snapshot: the session-level JSONL trace of a short defective run
/// is pinned byte for byte. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test observability`.
#[test]
fn golden_session_trace_snapshot() {
    let (reference, dut) = defective_dut();

    let buf = SharedBuf::default();
    let shared = Arc::clone(&buf.0);
    let mut tracer = Tracer::new(1024);
    tracer.set_filter(session_level);
    tracer.add_sink(Box::new(JsonLinesSink::new(buf)));

    let session = RobustSession::default().with_trace(TraceHandle::new(tracer));
    let report = session.run(&reference, &dut, 64).unwrap();
    assert_eq!(report.quarantined(), vec!["CONTROL_UNIT"]);

    let bytes = shared.lock().unwrap().clone();
    let actual = String::from_utf8(bytes).unwrap();

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("tests/golden_trace.jsonl exists (run with UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        actual, expected,
        "session-level trace drifted; run UPDATE_GOLDEN=1 cargo test --test observability \
         and review the diff"
    );
}

/// A session run without any handles attached stays silent and free: no
/// trace, no metrics, no waveform.
#[test]
fn undashed_session_is_silent() {
    let (reference, dut) = defective_dut();
    let report = RobustSession::default().run(&reference, &dut, 64).unwrap();
    assert!(report.vcd.is_none());
    assert_eq!(report.quarantined(), vec!["CONTROL_UNIT"]);
}
