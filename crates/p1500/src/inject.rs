//! Protocol fault injection: a misbehaving [`BistBackend`] and a TAP pin
//! interposer.
//!
//! The robustness machinery in `soctest-core` needs reproducible ways to
//! break a test session at each layer:
//!
//! * [`FaultyBackend`] misbehaves *behind* the wrapper — it can hang
//!   (never raise `end_test`), present a permanently corrupted signature
//!   (a defective core), or glitch the first few signature captures (a
//!   transient that majority-vote re-reads recover from);
//! * [`PinFaults`] corrupts the *chip boundary* — stuck-at or
//!   periodically flipped TMS/TDI/TDO pins and dropped TCK edges, applied
//!   by [`crate::TapDriver`] between the ATE and the TAP.

use std::cell::Cell;

use soctest_bist::BistCommand;

use crate::{BistBackend, MockBackend};

/// A [`MockBackend`] wrapper with injectable misbehavior.
#[derive(Debug, Clone)]
pub struct FaultyBackend {
    inner: MockBackend,
    hang: bool,
    signature_xor: u64,
    transient_reads: u32,
    transient_xor: u64,
    captures: Cell<u32>,
}

impl FaultyBackend {
    /// A well-behaved backend (identical to
    /// [`MockBackend::new`]`(sig_width, needed)`); chain the `with_*`
    /// builders to break it.
    pub fn new(sig_width: usize, needed: u64) -> Self {
        FaultyBackend {
            inner: MockBackend::new(sig_width, needed),
            hang: false,
            signature_xor: 0,
            transient_reads: 0,
            transient_xor: 0,
            captures: Cell::new(0),
        }
    }

    /// Never raise `end_test`, no matter how long the core runs.
    pub fn with_hang(mut self) -> Self {
        self.hang = true;
        self
    }

    /// XOR `mask` into every signature presented (a hard defect).
    pub fn with_signature_xor(mut self, mask: u64) -> Self {
        self.signature_xor = mask;
        self
    }

    /// XOR `mask` into the first `reads` signature captures only (a
    /// transient upset that later re-reads see past).
    pub fn with_transient_reads(mut self, reads: u32, mask: u64) -> Self {
        self.transient_reads = reads;
        self.transient_xor = mask;
        self
    }

    /// The signature a fault-free run would present.
    pub fn expected_signature(&self) -> u64 {
        self.inner.expected_signature()
    }
}

impl BistBackend for FaultyBackend {
    fn command(&mut self, cmd: BistCommand) {
        self.inner.command(cmd);
    }

    fn functional_clock(&mut self) {
        self.inner.functional_clock();
    }

    fn end_test(&self) -> bool {
        !self.hang && self.inner.end_test()
    }

    fn selected_signature(&self) -> u64 {
        let n = self.captures.get();
        self.captures.set(n.saturating_add(1));
        let mut sig = self.inner.selected_signature() ^ self.signature_xor;
        if n < self.transient_reads {
            sig ^= self.transient_xor;
        }
        sig
    }

    fn signature_width(&self) -> usize {
        self.inner.signature_width()
    }
}

/// A transparent adapter that suppresses `end_test` forever on *any*
/// backend — the generic analogue of [`FaultyBackend::with_hang`], which
/// only wraps a [`MockBackend`]. Wrap a real gate-level core in this to
/// drive a hung-engine scenario through exactly the session code paths a
/// healthy die takes: commands, functional clocks, and signature captures
/// all pass straight through; only the done flag is pinned low, so every
/// `wait_for_done` poll times out.
#[derive(Debug, Clone)]
pub struct HungBackend<B> {
    inner: B,
}

impl<B: BistBackend> HungBackend<B> {
    /// Wraps `inner`; the resulting backend never reports `end_test`.
    pub fn new(inner: B) -> Self {
        HungBackend { inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }
}

impl<B: BistBackend> BistBackend for HungBackend<B> {
    fn command(&mut self, cmd: BistCommand) {
        self.inner.command(cmd);
    }

    fn functional_clock(&mut self) {
        self.inner.functional_clock();
    }

    fn end_test(&self) -> bool {
        false
    }

    fn selected_signature(&self) -> u64 {
        self.inner.selected_signature()
    }

    fn signature_width(&self) -> usize {
        self.inner.signature_width()
    }
}

/// One misbehaving pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinFault {
    /// The pin reads a constant regardless of what is driven.
    StuckAt(bool),
    /// Every `period`-th TCK cycle (1-based), the pin value is inverted.
    FlipEvery(u64),
}

impl PinFault {
    /// The value seen on the far side of the fault at TCK cycle `cycle`.
    pub fn apply(self, value: bool, cycle: u64) -> bool {
        match self {
            PinFault::StuckAt(v) => v,
            PinFault::FlipEvery(period) => {
                if period > 0 && cycle.is_multiple_of(period) {
                    !value
                } else {
                    value
                }
            }
        }
    }
}

/// A TAP pin interposer: faults applied between the ATE and the TAP.
///
/// `tms`/`tdi` corrupt what the controller receives; `tdo` corrupts what
/// the ATE reads back; `drop_tck_every` swallows every n-th clock edge
/// entirely (the controller does not advance, the ATE believes it did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinFaults {
    /// Fault on the TMS pin, if any.
    pub tms: Option<PinFault>,
    /// Fault on the TDI pin, if any.
    pub tdi: Option<PinFault>,
    /// Fault on the TDO pin, if any.
    pub tdo: Option<PinFault>,
    /// Drop every n-th TCK edge (`None` = clean clock).
    pub drop_tck_every: Option<u64>,
}

impl PinFaults {
    /// A clean interposer (no faults).
    pub fn none() -> Self {
        PinFaults::default()
    }

    /// Whether any fault is armed.
    pub fn is_active(&self) -> bool {
        self.tms.is_some()
            || self.tdi.is_some()
            || self.tdo.is_some()
            || self.drop_tck_every.is_some()
    }

    /// Whether TCK edge `cycle` (1-based) is dropped.
    pub fn drops_cycle(&self, cycle: u64) -> bool {
        matches!(self.drop_tck_every, Some(n) if n > 0 && cycle.is_multiple_of(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_faulty_backend_matches_mock() {
        let mut f = FaultyBackend::new(16, 5);
        let mut m = MockBackend::new(16, 5);
        for b in [&mut f as &mut dyn BistBackend, &mut m] {
            b.command(BistCommand::LoadPatternCount(5));
            b.command(BistCommand::Start);
            for _ in 0..5 {
                b.functional_clock();
            }
        }
        assert!(f.end_test() && m.end_test());
        assert_eq!(f.selected_signature(), m.selected_signature());
    }

    #[test]
    fn hang_suppresses_end_test_forever() {
        let mut f = FaultyBackend::new(8, 2).with_hang();
        f.command(BistCommand::LoadPatternCount(2));
        f.command(BistCommand::Start);
        for _ in 0..1000 {
            f.functional_clock();
        }
        assert!(!f.end_test());
    }

    #[test]
    fn transient_reads_clear_after_the_glitch() {
        let mut f = FaultyBackend::new(8, 1).with_transient_reads(1, 0b1010);
        f.command(BistCommand::LoadPatternCount(1));
        f.command(BistCommand::Start);
        f.functional_clock();
        let first = f.selected_signature();
        let second = f.selected_signature();
        assert_eq!(first ^ 0b1010, second, "only the first read is upset");
        assert_eq!(second, f.expected_signature());
    }

    #[test]
    fn hung_adapter_pins_done_low_on_any_backend() {
        let mut h = HungBackend::new(MockBackend::new(8, 2));
        h.command(BistCommand::LoadPatternCount(2));
        h.command(BistCommand::Start);
        for _ in 0..100 {
            h.functional_clock();
        }
        assert!(h.inner().end_test(), "the wrapped core itself finished");
        assert!(!h.end_test(), "the adapter never raises done");
        assert_eq!(h.signature_width(), 8);
    }

    #[test]
    fn pin_fault_application() {
        assert!(PinFault::StuckAt(true).apply(false, 3));
        assert!(!PinFault::StuckAt(false).apply(true, 3));
        assert!(PinFault::FlipEvery(4).apply(false, 4));
        assert!(!PinFault::FlipEvery(4).apply(false, 5));
        let pf = PinFaults {
            drop_tck_every: Some(3),
            ..PinFaults::none()
        };
        assert!(pf.drops_cycle(3) && pf.drops_cycle(6));
        assert!(!pf.drops_cycle(4));
        assert!(pf.is_active());
        assert!(!PinFaults::none().is_active());
    }
}
