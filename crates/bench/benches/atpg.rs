//! PODEM generation rate on the case-study scan view.

use soctest_atpg::{insert_scan, Podem, PodemConfig, ScanView};
use soctest_bench::micro::bench;
use soctest_core::casestudy::CaseStudy;
use soctest_fault::FaultUniverse;

fn main() {
    let case = CaseStudy::paper().unwrap();
    let design = insert_scan(&case.modules()[0], 1).unwrap();
    let sv = ScanView::of(&design.netlist).unwrap();
    let universe = FaultUniverse::stuck_at(&sv.view);
    bench("podem/bit_node_first_64_faults", || {
        let mut podem = Podem::new(universe.view(), PodemConfig::default()).unwrap();
        let mut generated = 0;
        for &f in universe.faults().iter().take(64) {
            if podem.generate(f).is_some() {
                generated += 1;
            }
        }
        generated
    });
}
