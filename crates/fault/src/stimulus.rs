//! Stimulus sources for sequential fault simulation.

/// A per-cycle stimulus for the sequential fault simulator.
///
/// The simulator *materializes* the stimulus into a bit matrix before
/// running (windowed simulation replays the same cycles for many fault
/// groups), so implementations only need to produce each cycle once, in
/// order.
pub trait SeqStimulus {
    /// Total number of clock cycles to apply.
    fn cycles(&self) -> u64;

    /// Fills `out[i]` with the value of primary input `i` at cycle `t`.
    ///
    /// Called exactly once per cycle, with `t` strictly increasing.
    fn fill(&mut self, t: u64, out: &mut [bool]);
}

/// A stimulus from a pre-built vector list; each `u64` packs the primary
/// inputs LSB-first (suitable for circuits with at most 64 inputs).
#[derive(Debug, Clone)]
pub struct VectorStimulus {
    vectors: Vec<u64>,
}

impl VectorStimulus {
    /// Wraps packed input vectors.
    pub fn new(vectors: Vec<u64>) -> Self {
        VectorStimulus { vectors }
    }

    /// The underlying vectors.
    pub fn vectors(&self) -> &[u64] {
        &self.vectors
    }
}

impl SeqStimulus for VectorStimulus {
    fn cycles(&self) -> u64 {
        self.vectors.len() as u64
    }

    fn fill(&mut self, t: u64, out: &mut [bool]) {
        assert!(
            out.len() <= 64,
            "VectorStimulus supports at most 64 primary inputs"
        );
        let v = self.vectors[t as usize];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (v >> i) & 1 == 1;
        }
    }
}

impl<F: FnMut(u64, &mut [bool])> SeqStimulus for (u64, F) {
    fn cycles(&self) -> u64 {
        self.0
    }

    fn fill(&mut self, t: u64, out: &mut [bool]) {
        (self.1)(t, out)
    }
}

/// A dense, materialized stimulus: `bits[t]` holds the packed input row for
/// cycle `t`. Built by the simulator from any [`SeqStimulus`].
#[derive(Debug, Clone)]
pub(crate) struct StimulusMatrix {
    pub cycles: u64,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl StimulusMatrix {
    pub fn materialize(stim: &mut dyn SeqStimulus, num_inputs: usize) -> Self {
        let cycles = stim.cycles();
        let words_per_row = num_inputs.div_ceil(64).max(1);
        let mut bits = vec![0u64; words_per_row * cycles as usize];
        let mut row = vec![false; num_inputs];
        for t in 0..cycles {
            stim.fill(t, &mut row);
            let base = t as usize * words_per_row;
            for (i, &b) in row.iter().enumerate() {
                if b {
                    bits[base + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        StimulusMatrix {
            cycles,
            words_per_row,
            bits,
        }
    }

    #[inline]
    pub fn get(&self, t: u64, input: usize) -> bool {
        let base = t as usize * self.words_per_row;
        (self.bits[base + input / 64] >> (input % 64)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_stimulus_unpacks() {
        let mut s = VectorStimulus::new(vec![0b101, 0b010]);
        let mut out = vec![false; 3];
        s.fill(0, &mut out);
        assert_eq!(out, [true, false, true]);
        s.fill(1, &mut out);
        assert_eq!(out, [false, true, false]);
        assert_eq!(s.cycles(), 2);
    }

    #[test]
    fn closure_stimulus_works() {
        let mut s = (4u64, |t: u64, out: &mut [bool]| {
            out[0] = t.is_multiple_of(2);
        });
        let mut out = vec![false; 1];
        s.fill(2, &mut out);
        assert!(out[0]);
        assert_eq!(s.cycles(), 4);
    }

    #[test]
    fn matrix_round_trips() {
        let mut s = VectorStimulus::new(vec![0b11, 0b01, 0b10]);
        let m = StimulusMatrix::materialize(&mut s, 2);
        assert!(m.get(0, 0) && m.get(0, 1));
        assert!(m.get(1, 0) && !m.get(1, 1));
        assert!(!m.get(2, 0) && m.get(2, 1));
    }

    #[test]
    fn matrix_handles_wide_inputs() {
        let mut s = (1u64, |_t: u64, out: &mut [bool]| {
            out[70] = true;
            out[0] = true;
        });
        let m = StimulusMatrix::materialize(&mut s, 80);
        assert!(m.get(0, 70));
        assert!(m.get(0, 0));
        assert!(!m.get(0, 40));
    }
}
